//! Kernel objects: sockets, connections, files, Unix-domain channels.
//!
//! A kernel object is shared state referenced by one or more file
//! descriptors, possibly from multiple processes — this is exactly why MCR
//! must treat descriptor numbers as *immutable state objects*: recreating the
//! descriptor in the new version would lose the in-kernel state held here.
//!
//! # Slab layout and ordering guarantees
//!
//! The table is a slab: objects live in a dense `Vec` of slots with a
//! free-list, and an [`ObjId`] resolves to its slot through a dense
//! id-indexed vector in O(1). Ids are handed out sequentially and **never
//! reused**; when an object dies its id maps to a tombstone, so a stale id
//! can never alias a newer object (the generation check — every slot also
//! records the id it currently holds, and lookups verify the tag). Live
//! objects are threaded on an intrusive insertion-order list, which — since
//! ids are monotonic — is identical to ascending-id order: [`ObjectTable::iter`]
//! observes exactly the order the old ordered-map implementation did, so
//! kernel fingerprints and wake order are unchanged.
//!
//! Port and Unix-channel lookups go through small per-key buckets instead of
//! scanning the table; when a bucket holds several candidates the *lowest
//! live id* wins, matching the historical full-scan semantics.

use std::collections::{BTreeMap, VecDeque};

use crate::ids::{ConnId, ObjId};

/// Slot-index sentinel for "no slot" / tombstoned ids.
const NIL: u32 = u32::MAX;

/// A message queued on a Unix-domain channel; may carry descriptors
/// (SCM_RIGHTS-style), represented by the kernel objects they refer to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnixMessage {
    /// Opaque payload bytes.
    pub data: Vec<u8>,
    /// Kernel objects attached to the message (fd passing).
    pub objects: Vec<ObjId>,
}

/// The in-kernel state behind a file descriptor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelObject {
    /// A listening TCP socket bound to a port.
    Listener {
        /// Bound port (0 while unbound).
        port: u16,
        /// Whether `listen()` has been called.
        listening: bool,
        /// Pending client connections waiting to be accepted.
        backlog: VecDeque<ConnId>,
    },
    /// An accepted TCP connection.
    Connection {
        /// Workload-level connection identifier.
        conn: ConnId,
        /// Bytes sent by the client, not yet read by the server.
        inbox: VecDeque<Vec<u8>>,
        /// Bytes sent by the server, not yet read by the client.
        outbox: VecDeque<Vec<u8>>,
        /// Whether the client closed its side.
        peer_closed: bool,
    },
    /// An open regular file.
    File {
        /// Path in the simulated file system.
        path: String,
        /// Current read/write offset.
        offset: u64,
    },
    /// A named Unix-domain datagram channel (used by `mcr-ctl` signalling and
    /// old/new-version coordination).
    UnixChannel {
        /// Abstract socket name.
        name: String,
        /// Queued messages.
        inbox: VecDeque<UnixMessage>,
    },
    /// An anonymous pipe.
    Pipe {
        /// Buffered bytes.
        buffer: VecDeque<u8>,
    },
}

impl KernelObject {
    /// Short label describing the object kind (used in diagnostics and in the
    /// startup log).
    pub fn kind_label(&self) -> &'static str {
        match self {
            KernelObject::Listener { .. } => "listener",
            KernelObject::Connection { .. } => "connection",
            KernelObject::File { .. } => "file",
            KernelObject::UnixChannel { .. } => "unix",
            KernelObject::Pipe { .. } => "pipe",
        }
    }
}

/// One occupied or free slab slot.
#[derive(Debug, Clone)]
struct Slot {
    /// Generation tag: the id currently stored in this slot. A resolved slot
    /// whose tag does not match the id being looked up means the caller held
    /// a stale id that outlived its object — lookups treat it as dead and
    /// debug builds assert.
    id: u64,
    obj: KernelObject,
    rc: u32,
    /// Intrusive insertion-order links (slot indices; [`NIL`] at the ends).
    prev: u32,
    next: u32,
}

/// Reference-counted object table shared by every process's descriptors,
/// backed by a slab (see the module docs for layout and ordering).
#[derive(Debug, Clone)]
pub struct ObjectTable {
    slots: Vec<Slot>,
    /// Free slot indices, reused LIFO.
    free: Vec<u32>,
    /// Raw id → slot index; [`NIL`] tombstones dead (or never-issued) ids.
    id_to_slot: Vec<u32>,
    /// Insertion-order list endpoints (slot indices).
    order_head: u32,
    order_tail: u32,
    /// Workload connection id → raw object id (0 = none), so the per-send
    /// client path resolves a connection in O(1) at fleet scale.
    conn_to_id: Vec<u64>,
    /// Bound port → candidate listener ids (tiny buckets; lowest live
    /// listening id wins).
    ports: BTreeMap<u16, Vec<u64>>,
    /// Channel name → candidate channel ids (lowest live id wins).
    unix_names: BTreeMap<String, Vec<u64>>,
    next_id: u64,
    live: usize,
}

impl Default for ObjectTable {
    fn default() -> Self {
        Self::new()
    }
}

impl ObjectTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        ObjectTable {
            slots: Vec::new(),
            free: Vec::new(),
            id_to_slot: Vec::new(),
            order_head: NIL,
            order_tail: NIL,
            conn_to_id: Vec::new(),
            ports: BTreeMap::new(),
            unix_names: BTreeMap::new(),
            next_id: 1,
            live: 0,
        }
    }

    /// Resolves an id to its slot index, enforcing the generation tag.
    fn slot_of(&self, id: ObjId) -> Option<u32> {
        let s = *self.id_to_slot.get(id.0 as usize)?;
        if s == NIL {
            return None;
        }
        debug_assert_eq!(self.slots[s as usize].id, id.0, "stale ObjId aliased a reused slot");
        (self.slots[s as usize].id == id.0).then_some(s)
    }

    /// Inserts a new object with refcount 1.
    pub fn insert(&mut self, obj: KernelObject) -> ObjId {
        let id = ObjId(self.next_id);
        self.next_id += 1;
        self.index_payload(id, &obj);
        let slot = match self.free.pop() {
            Some(s) => {
                let old_tail = self.order_tail;
                self.slots[s as usize] = Slot { id: id.0, obj, rc: 1, prev: old_tail, next: NIL };
                s
            }
            None => {
                let s = self.slots.len() as u32;
                self.slots.push(Slot { id: id.0, obj, rc: 1, prev: self.order_tail, next: NIL });
                s
            }
        };
        if self.order_tail != NIL {
            self.slots[self.order_tail as usize].next = slot;
        } else {
            self.order_head = slot;
        }
        self.order_tail = slot;
        let idx = id.0 as usize;
        if idx >= self.id_to_slot.len() {
            self.id_to_slot.resize(idx + 1, NIL);
        }
        self.id_to_slot[idx] = slot;
        self.live += 1;
        id
    }

    /// Increments the reference count (descriptor duplication, fork, fd
    /// passing).
    pub fn incref(&mut self, id: ObjId) {
        if let Some(s) = self.slot_of(id) {
            self.slots[s as usize].rc += 1;
        }
    }

    /// Decrements the reference count, dropping the object at zero.
    /// Returns true if the object was destroyed.
    pub fn decref(&mut self, id: ObjId) -> bool {
        let Some(s) = self.slot_of(id) else { return false };
        let slot = &mut self.slots[s as usize];
        slot.rc -= 1;
        if slot.rc > 0 {
            return false;
        }
        // Unindex before tearing the slot down.
        match &slot.obj {
            KernelObject::Connection { conn, .. } => {
                let idx = conn.0 as usize;
                if idx < self.conn_to_id.len() && self.conn_to_id[idx] == id.0 {
                    self.conn_to_id[idx] = 0;
                }
            }
            KernelObject::Listener { port, .. } => {
                let port = *port;
                if port != 0 {
                    if let Some(bucket) = self.ports.get_mut(&port) {
                        bucket.retain(|&i| i != id.0);
                        if bucket.is_empty() {
                            self.ports.remove(&port);
                        }
                    }
                }
            }
            KernelObject::UnixChannel { name, .. } => {
                let name = name.clone();
                if let Some(bucket) = self.unix_names.get_mut(&name) {
                    bucket.retain(|&i| i != id.0);
                    if bucket.is_empty() {
                        self.unix_names.remove(&name);
                    }
                }
            }
            _ => {}
        }
        let (prev, next) = {
            let slot = &self.slots[s as usize];
            (slot.prev, slot.next)
        };
        if prev != NIL {
            self.slots[prev as usize].next = next;
        } else {
            self.order_head = next;
        }
        if next != NIL {
            self.slots[next as usize].prev = prev;
        } else {
            self.order_tail = prev;
        }
        self.id_to_slot[id.0 as usize] = NIL;
        self.free.push(s);
        self.live -= 1;
        true
    }

    /// Shared access to an object.
    pub fn get(&self, id: ObjId) -> Option<&KernelObject> {
        self.slot_of(id).map(|s| &self.slots[s as usize].obj)
    }

    /// Exclusive access to an object.
    ///
    /// A [`KernelObject::Listener`]'s `port`/`listening` fields must not be
    /// changed through this handle — use [`ObjectTable::bind_listener`] and
    /// [`ObjectTable::set_listening`], which keep the port index coherent.
    pub fn get_mut(&mut self, id: ObjId) -> Option<&mut KernelObject> {
        self.slot_of(id).map(|s| &mut self.slots[s as usize].obj)
    }

    /// Binds a listener to `port`, maintaining the port index. Returns false
    /// if `id` is not a live listener.
    pub fn bind_listener(&mut self, id: ObjId, port: u16) -> bool {
        let Some(s) = self.slot_of(id) else { return false };
        let KernelObject::Listener { port: p, .. } = &mut self.slots[s as usize].obj else {
            return false;
        };
        let old = *p;
        *p = port;
        if old != 0 {
            if let Some(bucket) = self.ports.get_mut(&old) {
                bucket.retain(|&i| i != id.0);
                if bucket.is_empty() {
                    self.ports.remove(&old);
                }
            }
        }
        if port != 0 {
            self.ports.entry(port).or_default().push(id.0);
        }
        true
    }

    /// Marks a listener as listening. Returns false if `id` is not a live
    /// listener.
    pub fn set_listening(&mut self, id: ObjId) -> bool {
        let Some(s) = self.slot_of(id) else { return false };
        match &mut self.slots[s as usize].obj {
            KernelObject::Listener { listening, .. } => {
                *listening = true;
                true
            }
            _ => false,
        }
    }

    /// Current reference count of an object (0 if it does not exist).
    pub fn refcount(&self, id: ObjId) -> u32 {
        self.slot_of(id).map(|s| self.slots[s as usize].rc).unwrap_or(0)
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if the table holds no objects.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Iterates over `(id, object)` pairs in insertion order — which, since
    /// ids are monotonic and never reused, is exactly ascending-id order.
    pub fn iter(&self) -> impl Iterator<Item = (ObjId, &KernelObject)> {
        OrderIter { table: self, cursor: self.order_head }
    }

    /// Adds `id` to the payload-kind lookup indexes (connection, port,
    /// channel-name). Shared by [`ObjectTable::insert`] and the restore path.
    fn index_payload(&mut self, id: ObjId, obj: &KernelObject) {
        match obj {
            KernelObject::Connection { conn, .. } => {
                let idx = conn.0 as usize;
                if idx >= self.conn_to_id.len() {
                    self.conn_to_id.resize(idx + 1, 0);
                }
                self.conn_to_id[idx] = id.0;
            }
            KernelObject::UnixChannel { name, .. } => {
                self.unix_names.entry(name.clone()).or_default().push(id.0);
            }
            KernelObject::Listener { port, .. } if *port != 0 => {
                self.ports.entry(*port).or_default().push(id.0);
            }
            _ => {}
        }
    }

    /// Removes `id` from the payload-kind lookup indexes for `obj`.
    fn unindex_payload(&mut self, id: ObjId, obj: &KernelObject) {
        match obj {
            KernelObject::Connection { conn, .. } => {
                let idx = conn.0 as usize;
                if idx < self.conn_to_id.len() && self.conn_to_id[idx] == id.0 {
                    self.conn_to_id[idx] = 0;
                }
            }
            KernelObject::Listener { port, .. } if *port != 0 => {
                if let Some(bucket) = self.ports.get_mut(port) {
                    bucket.retain(|&i| i != id.0);
                    if bucket.is_empty() {
                        self.ports.remove(port);
                    }
                }
            }
            KernelObject::UnixChannel { name, .. } => {
                if let Some(bucket) = self.unix_names.get_mut(name) {
                    bucket.retain(|&i| i != id.0);
                    if bucket.is_empty() {
                        self.unix_names.remove(name);
                    }
                }
            }
            _ => {}
        }
    }

    /// Re-creates an object at a *specific* id with a *specific* reference
    /// count — the checkpoint-restore path, which must reproduce the
    /// checkpointed table exactly (ids are embedded in descriptor tables and
    /// in the kernel fingerprint). Fails if the id is already live or zero.
    ///
    /// The slot position in the slab may differ from the original table;
    /// only ids, payloads and refcounts are part of the restored contract
    /// (no public API exposes slot indices or insertion order besides
    /// ascending-id iteration of [`ObjectTable::iter`], which stays correct
    /// because restore inserts in ascending-id order).
    pub fn restore_insert(&mut self, id: ObjId, obj: KernelObject, rc: u32) -> Result<(), String> {
        if id.0 == 0 {
            return Err("object id 0 is reserved".into());
        }
        if self.slot_of(id).is_some() {
            return Err(format!("object id {} already live", id.0));
        }
        self.index_payload(id, &obj);
        let old_tail = self.order_tail;
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Slot { id: id.0, obj, rc, prev: old_tail, next: NIL };
                s
            }
            None => {
                let s = self.slots.len() as u32;
                self.slots.push(Slot { id: id.0, obj, rc, prev: old_tail, next: NIL });
                s
            }
        };
        if self.order_tail != NIL {
            self.slots[self.order_tail as usize].next = slot;
        } else {
            self.order_head = slot;
        }
        self.order_tail = slot;
        let idx = id.0 as usize;
        if idx >= self.id_to_slot.len() {
            self.id_to_slot.resize(idx + 1, NIL);
        }
        self.id_to_slot[idx] = slot;
        self.live += 1;
        self.next_id = self.next_id.max(id.0 + 1);
        Ok(())
    }

    /// Replaces a live object's payload wholesale, keeping id and refcount
    /// and re-synchronizing the kind indexes (restore path).
    pub fn restore_payload(&mut self, id: ObjId, obj: KernelObject) -> Result<(), String> {
        let Some(s) = self.slot_of(id) else {
            return Err(format!("object id {} not live", id.0));
        };
        let old = std::mem::replace(&mut self.slots[s as usize].obj, obj.clone());
        self.unindex_payload(id, &old);
        self.index_payload(id, &obj);
        self.slots[s as usize].obj = obj;
        Ok(())
    }

    /// Forces a live object's reference count (restore path: descriptor
    /// tables are rebuilt without increfs, then counts are set from the
    /// manifest).
    pub fn set_refcount(&mut self, id: ObjId, rc: u32) -> Result<(), String> {
        if rc == 0 {
            return Err("refcount 0 would leak a live slot; use decref".into());
        }
        let Some(s) = self.slot_of(id) else {
            return Err(format!("object id {} not live", id.0));
        };
        self.slots[s as usize].rc = rc;
        Ok(())
    }

    /// Finds the listener bound to `port`, if any. With several candidates
    /// (possible while only some have called `listen()`), the lowest live
    /// listening id wins — the historical full-scan semantics.
    pub fn listener_for_port(&self, port: u16) -> Option<ObjId> {
        self.ports
            .get(&port)?
            .iter()
            .filter(|&&id| {
                matches!(self.get(ObjId(id)), Some(KernelObject::Listener { listening: true, .. }))
            })
            .min()
            .map(|&id| ObjId(id))
    }

    /// Finds the Unix channel with the given name, if any (lowest live id).
    pub fn unix_channel(&self, name: &str) -> Option<ObjId> {
        self.unix_names
            .get(name)?
            .iter()
            .filter(|&&id| self.slot_of(ObjId(id)).is_some())
            .min()
            .map(|&id| ObjId(id))
    }

    /// Finds the connection object for a workload connection id, if any.
    pub fn connection_for(&self, conn: ConnId) -> Option<ObjId> {
        let id = *self.conn_to_id.get(conn.0 as usize)?;
        if id == 0 {
            return None;
        }
        self.slot_of(ObjId(id)).map(|_| ObjId(id))
    }
}

/// Insertion-order iterator over the slab's intrusive list.
struct OrderIter<'a> {
    table: &'a ObjectTable,
    cursor: u32,
}

impl<'a> Iterator for OrderIter<'a> {
    type Item = (ObjId, &'a KernelObject);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor == NIL {
            return None;
        }
        let slot = &self.table.slots[self.cursor as usize];
        self.cursor = slot.next;
        Some((ObjId(slot.id), &slot.obj))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refcounting_lifecycle() {
        let mut t = ObjectTable::new();
        let id = t.insert(KernelObject::Pipe { buffer: VecDeque::new() });
        assert_eq!(t.refcount(id), 1);
        t.incref(id);
        assert_eq!(t.refcount(id), 2);
        assert!(!t.decref(id));
        assert!(t.decref(id));
        assert!(t.get(id).is_none());
        assert_eq!(t.refcount(id), 0);
    }

    #[test]
    fn lookup_helpers() {
        let mut t = ObjectTable::new();
        let l = t.insert(KernelObject::Listener { port: 80, listening: true, backlog: VecDeque::new() });
        let _unbound =
            t.insert(KernelObject::Listener { port: 8080, listening: false, backlog: VecDeque::new() });
        let u = t.insert(KernelObject::UnixChannel { name: "mcr-ctl".into(), inbox: VecDeque::new() });
        let c = t.insert(KernelObject::Connection {
            conn: ConnId(5),
            inbox: VecDeque::new(),
            outbox: VecDeque::new(),
            peer_closed: false,
        });
        assert_eq!(t.listener_for_port(80), Some(l));
        assert_eq!(t.listener_for_port(8080), None, "not listening yet");
        assert_eq!(t.unix_channel("mcr-ctl"), Some(u));
        assert_eq!(t.unix_channel("other"), None);
        assert_eq!(t.connection_for(ConnId(5)), Some(c));
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn kind_labels() {
        let objs = [
            KernelObject::Listener { port: 1, listening: false, backlog: VecDeque::new() },
            KernelObject::Connection {
                conn: ConnId(1),
                inbox: VecDeque::new(),
                outbox: VecDeque::new(),
                peer_closed: false,
            },
            KernelObject::File { path: "/etc/conf".into(), offset: 0 },
            KernelObject::UnixChannel { name: "x".into(), inbox: VecDeque::new() },
            KernelObject::Pipe { buffer: VecDeque::new() },
        ];
        let labels: Vec<&str> = objs.iter().map(|o| o.kind_label()).collect();
        assert_eq!(labels, vec!["listener", "connection", "file", "unix", "pipe"]);
    }

    #[test]
    fn ids_are_never_reused_and_stale_ids_stay_dead() {
        let mut t = ObjectTable::new();
        let a = t.insert(KernelObject::Pipe { buffer: VecDeque::new() });
        assert!(t.decref(a));
        // The freed slot is recycled, but the stale id must not resolve to
        // the new occupant.
        let b = t.insert(KernelObject::File { path: "/x".into(), offset: 0 });
        assert_ne!(a, b);
        assert!(t.get(a).is_none(), "tombstoned id resolves to nothing");
        assert_eq!(t.refcount(a), 0);
        t.incref(a); // no-op on a dead id
        assert_eq!(t.refcount(a), 0);
        assert_eq!(t.get(b).map(|o| o.kind_label()), Some("file"));
    }

    #[test]
    fn iteration_is_insertion_order_across_slot_reuse() {
        let mut t = ObjectTable::new();
        let a = t.insert(KernelObject::Pipe { buffer: VecDeque::new() });
        let b = t.insert(KernelObject::Pipe { buffer: VecDeque::new() });
        let c = t.insert(KernelObject::Pipe { buffer: VecDeque::new() });
        assert!(t.decref(b));
        // d recycles b's slot but must iterate after c (insertion order ==
        // ascending id).
        let d = t.insert(KernelObject::Pipe { buffer: VecDeque::new() });
        let ids: Vec<ObjId> = t.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![a, c, d]);
        assert!(ids.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn bind_listener_maintains_port_index() {
        let mut t = ObjectTable::new();
        let l = t.insert(KernelObject::Listener { port: 0, listening: false, backlog: VecDeque::new() });
        assert_eq!(t.listener_for_port(9000), None);
        assert!(t.bind_listener(l, 9000));
        assert_eq!(t.listener_for_port(9000), None, "bound but not yet listening");
        assert!(t.set_listening(l));
        assert_eq!(t.listener_for_port(9000), Some(l));
        // Rebinding moves the index entry.
        assert!(t.bind_listener(l, 9001));
        assert_eq!(t.listener_for_port(9000), None);
        assert_eq!(t.listener_for_port(9001), Some(l));
        // Death unindexes.
        assert!(t.decref(l));
        assert_eq!(t.listener_for_port(9001), None);
    }
}
