//! Strongly-typed identifiers used across the simulated kernel.
//!
//! Newtypes keep process ids, thread ids, file descriptors and kernel object
//! ids from being confused with one another (the MCR immutable-object
//! machinery juggles all of them at once).

use std::fmt;

/// Simulated process identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pid(pub u32);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid:{}", self.0)
    }
}

/// Simulated thread identifier (unique within the whole kernel, like Linux).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tid(pub u32);

impl fmt::Display for Tid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tid:{}", self.0)
    }
}

/// Simulated file descriptor number, local to a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fd(pub i32);

impl Fd {
    /// Returns true if the descriptor number lies in MCR's reserved range.
    ///
    /// Mutable reinitialization allocates inherited descriptors in a reserved
    /// (non-reusable) range at the end of the descriptor space to guarantee
    /// *global separability* (see paper §5).
    pub fn is_reserved(self) -> bool {
        self.0 >= RESERVED_FD_BASE
    }
}

/// First descriptor number of the reserved range used for inherited fds.
pub const RESERVED_FD_BASE: i32 = 1 << 20;

impl fmt::Display for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fd:{}", self.0)
    }
}

/// Identifier of a kernel object (socket, file, pipe, ...), global to the
/// simulated kernel; multiple descriptors may refer to the same object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjId(pub u64);

impl fmt::Display for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj:{}", self.0)
    }
}

/// Identifier of a simulated client connection at the workload layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConnId(pub u64);

impl fmt::Display for ConnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "conn:{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserved_fd_detection() {
        assert!(!Fd(3).is_reserved());
        assert!(!Fd(RESERVED_FD_BASE - 1).is_reserved());
        assert!(Fd(RESERVED_FD_BASE).is_reserved());
        assert!(Fd(RESERVED_FD_BASE + 10).is_reserved());
    }

    #[test]
    fn ids_order_and_display() {
        assert!(Pid(1) < Pid(2));
        assert!(Fd(0) < Fd(1));
        assert_eq!(Pid(42).to_string(), "pid:42");
        assert_eq!(Tid(7).to_string(), "tid:7");
        assert_eq!(Fd(3).to_string(), "fd:3");
        assert_eq!(ObjId(9).to_string(), "obj:9");
        assert_eq!(ConnId(1).to_string(), "conn:1");
    }
}
