//! Deterministic virtual clock.
//!
//! All simulated time (startup time, quiescence time, state-transfer time,
//! benchmark durations) is accounted in nanoseconds on a [`VirtualClock`].
//! Costs are charged explicitly by the kernel and by the MCR runtime, which
//! makes timing experiments reproducible regardless of host load; wall-clock
//! measurements are layered on top by the benchmark harness where real
//! instruction counts matter (Table 3).

/// A point in simulated time, in nanoseconds since kernel boot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimInstant(pub u64);

impl SimInstant {
    /// Nanoseconds elapsed since `earlier`. Saturates at zero.
    pub fn duration_since(self, earlier: SimInstant) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimDuration {
    /// Constructs a duration from microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Constructs a duration from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// The duration expressed in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The duration expressed in microseconds.
    pub fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Saturating addition.
    #[must_use]
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }
}

/// The kernel's monotonically increasing virtual clock.
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    now: u64,
}

impl VirtualClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimInstant {
        SimInstant(self.now)
    }

    /// Advances the clock by `d`.
    pub fn advance(&mut self, d: SimDuration) {
        self.now += d.0;
    }

    /// Advances the clock by `ns` nanoseconds.
    pub fn advance_ns(&mut self, ns: u64) {
        self.now += ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_monotonically() {
        let mut c = VirtualClock::new();
        let t0 = c.now();
        c.advance(SimDuration::from_micros(5));
        c.advance_ns(500);
        let t1 = c.now();
        assert_eq!(t1.duration_since(t0), SimDuration(5_500));
        assert_eq!(t0.duration_since(t1), SimDuration(0));
    }

    #[test]
    fn duration_conversions() {
        assert_eq!(SimDuration::from_millis(3).as_micros(), 3_000);
        assert!((SimDuration::from_millis(2).as_millis_f64() - 2.0).abs() < 1e-9);
        assert_eq!(SimDuration(1).saturating_add(SimDuration(2)), SimDuration(3));
    }
}
