//! Per-process file-descriptor tables.
//!
//! The table reproduces the POSIX semantics MCR's *global inheritance* and
//! *global separability* rules depend on: descriptors are normally assigned
//! lowest-free-first, are copied wholesale across `fork`, and can be installed
//! at explicit numbers (`dup2`-style) or in a reserved high range that is
//! never recycled by ordinary allocation.

use std::collections::BTreeMap;

use crate::error::{SimError, SimResult};
use crate::ids::{Fd, ObjId, RESERVED_FD_BASE};

/// One open-descriptor slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FdEntry {
    /// Kernel object the descriptor refers to.
    pub object: ObjId,
    /// Close-on-exec flag (descriptors with the flag are dropped on `exec`).
    pub cloexec: bool,
    /// Whether the descriptor was inherited from the previous program version
    /// by MCR (and therefore refers to an *immutable state object*).
    pub inherited: bool,
}

/// A process's descriptor table.
#[derive(Debug, Clone, Default)]
pub struct FdTable {
    entries: BTreeMap<i32, FdEntry>,
    /// Next candidate in the reserved range.
    next_reserved: i32,
}

impl FdTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        FdTable { entries: BTreeMap::new(), next_reserved: RESERVED_FD_BASE }
    }

    /// Allocates the lowest free non-reserved descriptor for `object`.
    pub fn alloc(&mut self, object: ObjId) -> Fd {
        let mut candidate = 0;
        for (&fd, _) in self.entries.range(0..RESERVED_FD_BASE) {
            if fd == candidate {
                candidate += 1;
            } else if fd > candidate {
                break;
            }
        }
        let fd = Fd(candidate);
        self.entries.insert(fd.0, FdEntry { object, cloexec: false, inherited: false });
        fd
    }

    /// Allocates a descriptor in the reserved (never-reused) range.
    ///
    /// Mutable reinitialization stores descriptors inherited from the old
    /// version here so that ordinary descriptor allocation in the new version
    /// can never clash with or recycle them.
    pub fn alloc_reserved(&mut self, object: ObjId) -> Fd {
        let fd = Fd(self.next_reserved);
        self.next_reserved += 1;
        self.entries.insert(fd.0, FdEntry { object, cloexec: false, inherited: true });
        fd
    }

    /// Installs `object` at an explicit descriptor number (like `dup2`).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::FdInUse`] if the slot is occupied.
    pub fn install_at(&mut self, fd: Fd, object: ObjId, inherited: bool) -> SimResult<()> {
        if self.entries.contains_key(&fd.0) {
            return Err(SimError::FdInUse(fd));
        }
        if fd.is_reserved() {
            self.next_reserved = self.next_reserved.max(fd.0 + 1);
        }
        self.entries.insert(fd.0, FdEntry { object, cloexec: false, inherited });
        Ok(())
    }

    /// Replaces whatever is at `fd` with `object` (dup2 onto an open slot).
    pub fn replace(&mut self, fd: Fd, object: ObjId, inherited: bool) -> Option<FdEntry> {
        self.entries.insert(fd.0, FdEntry { object, cloexec: false, inherited })
    }

    /// Looks up a descriptor.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadFd`] for an unknown descriptor.
    pub fn get(&self, fd: Fd) -> SimResult<FdEntry> {
        self.entries.get(&fd.0).copied().ok_or(SimError::BadFd(fd))
    }

    /// Removes a descriptor, returning its entry.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadFd`] for an unknown descriptor.
    pub fn remove(&mut self, fd: Fd) -> SimResult<FdEntry> {
        self.entries.remove(&fd.0).ok_or(SimError::BadFd(fd))
    }

    /// Sets the close-on-exec flag.
    pub fn set_cloexec(&mut self, fd: Fd, cloexec: bool) -> SimResult<()> {
        let e = self.entries.get_mut(&fd.0).ok_or(SimError::BadFd(fd))?;
        e.cloexec = cloexec;
        Ok(())
    }

    /// Whether the descriptor is open.
    pub fn contains(&self, fd: Fd) -> bool {
        self.entries.contains_key(&fd.0)
    }

    /// Iterates over `(fd, entry)` pairs in ascending descriptor order.
    pub fn iter(&self) -> impl Iterator<Item = (Fd, FdEntry)> + '_ {
        self.entries.iter().map(|(&fd, &e)| (Fd(fd), e))
    }

    /// Number of open descriptors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no descriptors are open.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Removes all descriptors marked close-on-exec (called by `exec`).
    pub fn drop_cloexec(&mut self) -> Vec<FdEntry> {
        let doomed: Vec<i32> = self.entries.iter().filter(|(_, e)| e.cloexec).map(|(&fd, _)| fd).collect();
        doomed.into_iter().filter_map(|fd| self.entries.remove(&fd)).collect()
    }

    /// Removes every inherited descriptor that is still unused at the end of
    /// control migration; MCR garbage-collects these (paper §5).
    pub fn drop_inherited<F>(&mut self, mut keep: F) -> Vec<FdEntry>
    where
        F: FnMut(Fd, &FdEntry) -> bool,
    {
        let doomed: Vec<i32> = self
            .entries
            .iter()
            .filter(|(&fd, e)| e.inherited && !keep(Fd(fd), e))
            .map(|(&fd, _)| fd)
            .collect();
        doomed.into_iter().filter_map(|fd| self.entries.remove(&fd)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowest_free_allocation() {
        let mut t = FdTable::new();
        assert_eq!(t.alloc(ObjId(1)), Fd(0));
        assert_eq!(t.alloc(ObjId(2)), Fd(1));
        assert_eq!(t.alloc(ObjId(3)), Fd(2));
        t.remove(Fd(1)).unwrap();
        assert_eq!(t.alloc(ObjId(4)), Fd(1), "freed descriptor is reused lowest-first");
    }

    #[test]
    fn reserved_range_never_recycled_by_ordinary_alloc() {
        let mut t = FdTable::new();
        let r1 = t.alloc_reserved(ObjId(10));
        let r2 = t.alloc_reserved(ObjId(11));
        assert!(r1.is_reserved() && r2.is_reserved());
        assert_ne!(r1, r2);
        // Ordinary allocation stays in the low range even after removing a
        // reserved entry.
        t.remove(r1).unwrap();
        let n = t.alloc(ObjId(12));
        assert!(!n.is_reserved());
        // And new reserved fds never reuse the removed number.
        let r3 = t.alloc_reserved(ObjId(13));
        assert!(r3.0 > r2.0);
    }

    #[test]
    fn install_at_and_conflicts() {
        let mut t = FdTable::new();
        t.install_at(Fd(5), ObjId(1), true).unwrap();
        assert!(matches!(t.install_at(Fd(5), ObjId(2), false), Err(SimError::FdInUse(_))));
        assert_eq!(t.get(Fd(5)).unwrap().object, ObjId(1));
        assert!(t.get(Fd(5)).unwrap().inherited);
        assert!(matches!(t.get(Fd(9)), Err(SimError::BadFd(_))));
    }

    #[test]
    fn cloexec_dropped_on_exec() {
        let mut t = FdTable::new();
        let a = t.alloc(ObjId(1));
        let b = t.alloc(ObjId(2));
        t.set_cloexec(b, true).unwrap();
        let dropped = t.drop_cloexec();
        assert_eq!(dropped.len(), 1);
        assert!(t.contains(a));
        assert!(!t.contains(b));
    }

    #[test]
    fn drop_inherited_keeps_selected() {
        let mut t = FdTable::new();
        let keep_fd = t.alloc_reserved(ObjId(1));
        let _drop_fd = t.alloc_reserved(ObjId(2));
        let normal = t.alloc(ObjId(3));
        let dropped = t.drop_inherited(|fd, _| fd == keep_fd);
        assert_eq!(dropped.len(), 1);
        assert!(t.contains(keep_fd));
        assert!(t.contains(normal));
        assert_eq!(t.len(), 2);
    }
}
