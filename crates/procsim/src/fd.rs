//! Per-process file-descriptor tables.
//!
//! The table reproduces the POSIX semantics MCR's *global inheritance* and
//! *global separability* rules depend on: descriptors are normally assigned
//! lowest-free-first, are copied wholesale across `fork`, and can be installed
//! at explicit numbers (`dup2`-style) or in a reserved high range that is
//! never recycled by ordinary allocation.
//!
//! Storage is dense: the low range is a vector indexed directly by descriptor
//! number (O(1) lookup at any fleet size) with a min-heap free-list that
//! keeps allocation lowest-free-first, and the reserved range is a second
//! vector indexed by `fd - RESERVED_FD_BASE` whose slots are handed out
//! monotonically and never reused. Iteration walks the low range ascending,
//! then the reserved range ascending — the same total order the historical
//! ordered-map layout produced.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::error::{SimError, SimResult};
use crate::ids::{Fd, ObjId, RESERVED_FD_BASE};

/// One open-descriptor slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FdEntry {
    /// Kernel object the descriptor refers to.
    pub object: ObjId,
    /// Close-on-exec flag (descriptors with the flag are dropped on `exec`).
    pub cloexec: bool,
    /// Whether the descriptor was inherited from the previous program version
    /// by MCR (and therefore refers to an *immutable state object*).
    pub inherited: bool,
}

/// A process's descriptor table.
#[derive(Debug, Clone)]
pub struct FdTable {
    /// Low (ordinary) range, indexed by descriptor number.
    low: Vec<Option<FdEntry>>,
    /// Candidate free slots below `low.len()`; entries may be stale (slot
    /// since refilled) or duplicated — allocation pops and re-checks.
    low_free: BinaryHeap<Reverse<i32>>,
    /// Open descriptors in the low range.
    low_len: usize,
    /// Reserved range, indexed by `fd - RESERVED_FD_BASE`.
    reserved: Vec<Option<FdEntry>>,
    /// Open descriptors in the reserved range.
    reserved_len: usize,
    /// Next candidate in the reserved range (monotonic; freed reserved
    /// numbers are never reissued).
    next_reserved: i32,
}

impl Default for FdTable {
    fn default() -> Self {
        Self::new()
    }
}

impl FdTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        FdTable {
            low: Vec::new(),
            low_free: BinaryHeap::new(),
            low_len: 0,
            reserved: Vec::new(),
            reserved_len: 0,
            next_reserved: RESERVED_FD_BASE,
        }
    }

    fn slot(&self, fd: Fd) -> Option<&FdEntry> {
        if fd.0 < 0 {
            None
        } else if fd.0 < RESERVED_FD_BASE {
            self.low.get(fd.0 as usize)?.as_ref()
        } else {
            self.reserved.get((fd.0 - RESERVED_FD_BASE) as usize)?.as_ref()
        }
    }

    fn slot_mut(&mut self, fd: Fd) -> Option<&mut Option<FdEntry>> {
        if fd.0 < 0 {
            None
        } else if fd.0 < RESERVED_FD_BASE {
            self.low.get_mut(fd.0 as usize)
        } else {
            self.reserved.get_mut((fd.0 - RESERVED_FD_BASE) as usize)
        }
    }

    /// Grows the relevant range so `fd` has a slot, recording any freshly
    /// created gaps below it as allocation candidates.
    fn ensure_slot(&mut self, fd: Fd) {
        if fd.0 < RESERVED_FD_BASE {
            let idx = fd.0 as usize;
            if idx >= self.low.len() {
                for gap in self.low.len()..idx {
                    self.low_free.push(Reverse(gap as i32));
                }
                self.low.resize(idx + 1, None);
            }
        } else {
            let idx = (fd.0 - RESERVED_FD_BASE) as usize;
            if idx >= self.reserved.len() {
                self.reserved.resize(idx + 1, None);
            }
        }
    }

    /// Allocates the lowest free non-reserved descriptor for `object`.
    pub fn alloc(&mut self, object: ObjId) -> Fd {
        let entry = FdEntry { object, cloexec: false, inherited: false };
        while let Some(Reverse(candidate)) = self.low_free.pop() {
            let idx = candidate as usize;
            if idx < self.low.len() && self.low[idx].is_none() {
                self.low[idx] = Some(entry);
                self.low_len += 1;
                return Fd(candidate);
            }
            // Stale or duplicate candidate: the slot was refilled since it
            // was pushed; drop it and keep looking.
        }
        let fd = Fd(self.low.len() as i32);
        self.low.push(Some(entry));
        self.low_len += 1;
        fd
    }

    /// Allocates a descriptor in the reserved (never-reused) range.
    ///
    /// Mutable reinitialization stores descriptors inherited from the old
    /// version here so that ordinary descriptor allocation in the new version
    /// can never clash with or recycle them.
    pub fn alloc_reserved(&mut self, object: ObjId) -> Fd {
        let fd = Fd(self.next_reserved);
        self.next_reserved += 1;
        self.ensure_slot(fd);
        *self.slot_mut(fd).expect("ensured") = Some(FdEntry { object, cloexec: false, inherited: true });
        self.reserved_len += 1;
        fd
    }

    /// Installs `object` at an explicit descriptor number (like `dup2`).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::FdInUse`] if the slot is occupied.
    pub fn install_at(&mut self, fd: Fd, object: ObjId, inherited: bool) -> SimResult<()> {
        if self.slot(fd).is_some() {
            return Err(SimError::FdInUse(fd));
        }
        if fd.is_reserved() {
            self.next_reserved = self.next_reserved.max(fd.0 + 1);
        }
        self.ensure_slot(fd);
        *self.slot_mut(fd).expect("ensured") = Some(FdEntry { object, cloexec: false, inherited });
        if fd.is_reserved() {
            self.reserved_len += 1;
        } else {
            self.low_len += 1;
        }
        Ok(())
    }

    /// Replaces whatever is at `fd` with `object` (dup2 onto an open slot).
    pub fn replace(&mut self, fd: Fd, object: ObjId, inherited: bool) -> Option<FdEntry> {
        self.ensure_slot(fd);
        let slot = self.slot_mut(fd).expect("ensured");
        let old = slot.replace(FdEntry { object, cloexec: false, inherited });
        if old.is_none() {
            if fd.is_reserved() {
                self.reserved_len += 1;
            } else {
                self.low_len += 1;
            }
        }
        old
    }

    /// Looks up a descriptor.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadFd`] for an unknown descriptor.
    pub fn get(&self, fd: Fd) -> SimResult<FdEntry> {
        self.slot(fd).copied().ok_or(SimError::BadFd(fd))
    }

    /// Removes a descriptor, returning its entry.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadFd`] for an unknown descriptor.
    pub fn remove(&mut self, fd: Fd) -> SimResult<FdEntry> {
        let entry = self.slot_mut(fd).and_then(Option::take).ok_or(SimError::BadFd(fd))?;
        if fd.is_reserved() {
            self.reserved_len -= 1;
        } else {
            self.low_len -= 1;
            self.low_free.push(Reverse(fd.0));
        }
        Ok(entry)
    }

    /// Sets the close-on-exec flag.
    pub fn set_cloexec(&mut self, fd: Fd, cloexec: bool) -> SimResult<()> {
        match self.slot_mut(fd) {
            Some(Some(e)) => {
                e.cloexec = cloexec;
                Ok(())
            }
            _ => Err(SimError::BadFd(fd)),
        }
    }

    /// Whether the descriptor is open.
    pub fn contains(&self, fd: Fd) -> bool {
        self.slot(fd).is_some()
    }

    /// Iterates over `(fd, entry)` pairs in ascending descriptor order.
    pub fn iter(&self) -> impl Iterator<Item = (Fd, FdEntry)> + '_ {
        let low = self.low.iter().enumerate().filter_map(|(i, e)| e.map(|e| (Fd(i as i32), e)));
        let reserved = self
            .reserved
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.map(|e| (Fd(RESERVED_FD_BASE + i as i32), e)));
        low.chain(reserved)
    }

    /// Number of open descriptors.
    pub fn len(&self) -> usize {
        self.low_len + self.reserved_len
    }

    /// True if no descriptors are open.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes all descriptors marked close-on-exec (called by `exec`).
    pub fn drop_cloexec(&mut self) -> Vec<FdEntry> {
        let doomed: Vec<Fd> = self.iter().filter(|(_, e)| e.cloexec).map(|(fd, _)| fd).collect();
        doomed.into_iter().filter_map(|fd| self.remove(fd).ok()).collect()
    }

    /// Removes every inherited descriptor that is still unused at the end of
    /// control migration; MCR garbage-collects these (paper §5).
    pub fn drop_inherited<F>(&mut self, mut keep: F) -> Vec<FdEntry>
    where
        F: FnMut(Fd, &FdEntry) -> bool,
    {
        let doomed: Vec<Fd> =
            self.iter().filter(|&(fd, ref e)| e.inherited && !keep(fd, e)).map(|(fd, _)| fd).collect();
        doomed.into_iter().filter_map(|fd| self.remove(fd).ok()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowest_free_allocation() {
        let mut t = FdTable::new();
        assert_eq!(t.alloc(ObjId(1)), Fd(0));
        assert_eq!(t.alloc(ObjId(2)), Fd(1));
        assert_eq!(t.alloc(ObjId(3)), Fd(2));
        t.remove(Fd(1)).unwrap();
        assert_eq!(t.alloc(ObjId(4)), Fd(1), "freed descriptor is reused lowest-first");
    }

    #[test]
    fn reserved_range_never_recycled_by_ordinary_alloc() {
        let mut t = FdTable::new();
        let r1 = t.alloc_reserved(ObjId(10));
        let r2 = t.alloc_reserved(ObjId(11));
        assert!(r1.is_reserved() && r2.is_reserved());
        assert_ne!(r1, r2);
        // Ordinary allocation stays in the low range even after removing a
        // reserved entry.
        t.remove(r1).unwrap();
        let n = t.alloc(ObjId(12));
        assert!(!n.is_reserved());
        // And new reserved fds never reuse the removed number.
        let r3 = t.alloc_reserved(ObjId(13));
        assert!(r3.0 > r2.0);
    }

    #[test]
    fn install_at_and_conflicts() {
        let mut t = FdTable::new();
        t.install_at(Fd(5), ObjId(1), true).unwrap();
        assert!(matches!(t.install_at(Fd(5), ObjId(2), false), Err(SimError::FdInUse(_))));
        assert_eq!(t.get(Fd(5)).unwrap().object, ObjId(1));
        assert!(t.get(Fd(5)).unwrap().inherited);
        assert!(matches!(t.get(Fd(9)), Err(SimError::BadFd(_))));
    }

    #[test]
    fn install_at_gap_keeps_lowest_free_allocation() {
        let mut t = FdTable::new();
        // Installing beyond the current end leaves 0..5 free; allocation
        // must still fill those lowest-first.
        t.install_at(Fd(5), ObjId(1), false).unwrap();
        assert_eq!(t.alloc(ObjId(2)), Fd(0));
        assert_eq!(t.alloc(ObjId(3)), Fd(1));
        assert_eq!(t.alloc(ObjId(4)), Fd(2));
        assert_eq!(t.alloc(ObjId(5)), Fd(3));
        assert_eq!(t.alloc(ObjId(6)), Fd(4));
        assert_eq!(t.alloc(ObjId(7)), Fd(6), "5 is occupied, next free is 6");
        let fds: Vec<i32> = t.iter().map(|(fd, _)| fd.0).collect();
        assert_eq!(fds, vec![0, 1, 2, 3, 4, 5, 6], "iteration stays ascending");
    }

    #[test]
    fn double_remove_and_refill_keep_free_list_coherent() {
        let mut t = FdTable::new();
        let a = t.alloc(ObjId(1));
        let _b = t.alloc(ObjId(2));
        t.remove(a).unwrap();
        // Refill fd 0 explicitly, then free it again: the free-list now holds
        // a duplicate candidate, which allocation must tolerate.
        t.install_at(a, ObjId(3), false).unwrap();
        t.remove(a).unwrap();
        assert_eq!(t.alloc(ObjId(4)), a);
        assert_eq!(t.alloc(ObjId(5)), Fd(2), "duplicate candidate was discarded");
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn cloexec_dropped_on_exec() {
        let mut t = FdTable::new();
        let a = t.alloc(ObjId(1));
        let b = t.alloc(ObjId(2));
        t.set_cloexec(b, true).unwrap();
        let dropped = t.drop_cloexec();
        assert_eq!(dropped.len(), 1);
        assert!(t.contains(a));
        assert!(!t.contains(b));
    }

    #[test]
    fn drop_inherited_keeps_selected() {
        let mut t = FdTable::new();
        let keep_fd = t.alloc_reserved(ObjId(1));
        let _drop_fd = t.alloc_reserved(ObjId(2));
        let normal = t.alloc(ObjId(3));
        let dropped = t.drop_inherited(|fd, _| fd == keep_fd);
        assert_eq!(dropped.len(), 1);
        assert!(t.contains(keep_fd));
        assert!(t.contains(normal));
        assert_eq!(t.len(), 2);
    }
}
