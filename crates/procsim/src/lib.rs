//! # mcr-procsim — simulated OS substrate for the MCR reproduction
//!
//! This crate provides the deterministic, user-space substitute for the Linux
//! facilities the original Mutable Checkpoint-Restart (MCR) prototype relies
//! on: processes and threads, fork/exec semantics, file-descriptor tables with
//! SCM_RIGHTS-style descriptor passing, pid-namespace-style pid forcing,
//! listening sockets whose backlogs survive a process handover, virtual
//! address spaces with per-page *soft-dirty* tracking, and the allocator
//! families (ptmalloc-like heap, region/pool, slab) used by the evaluated
//! server programs.
//!
//! The higher layers (`mcr-typemeta`, `mcr-core`, `mcr-servers`) implement the
//! paper's actual contribution on top of this substrate; see `DESIGN.md` at
//! the repository root for the full substitution rationale.
//!
//! ## Slab substrate and ordering guarantees
//!
//! Every hot kernel table is a dense slab, not an ordered map, so the
//! per-event cost of a lookup is O(1) at any fleet size:
//!
//! * **Objects** ([`ObjectTable`]) — slot `Vec` + LIFO free-list; an
//!   [`ObjId`] resolves through a dense id→slot vector. Ids are monotonic
//!   and never reused, and each slot carries a *generation tag* (the id it
//!   currently holds), so a stale id tombstones instead of aliasing a
//!   recycled slot. Live objects stay threaded on an intrusive
//!   insertion-order list.
//! * **Descriptors** ([`FdTable`]) — the low range is indexed directly by
//!   descriptor number with a min-heap free-list (lowest-free-first
//!   allocation); the reserved range is monotonic and never recycled.
//! * **Processes / threads** — pid→slot slab in the kernel; each process
//!   keeps its threads in a tid-sorted dense `Vec`.
//! * **Readiness** — per-object waiter lists are intrusive FIFO lists
//!   through dense per-thread wait slots; timers sit on a bucketed wheel
//!   with lazy cancellation; wakeups are delivered in batches into a
//!   reusable buffer ([`Kernel::drain_wakeups_into`]).
//!
//! The *guaranteed orders* are unchanged from the ordered-map substrate the
//! slabs replaced (the property suite proves byte-identical kernel
//! fingerprints): object/descriptor/process iteration is ascending-id,
//! object waiters wake in park (FIFO) order, timers fire in (deadline,
//! registration) order, and the wake queue is FIFO with O(1) dedup.
//!
//! ## Quick example
//!
//! ```rust
//! use mcr_procsim::{Kernel, Syscall, SyscallPort, MemoryLayout};
//!
//! # fn main() -> Result<(), mcr_procsim::SimError> {
//! let mut kernel = Kernel::new();
//! let pid = kernel.create_process("demo")?;
//! let tid = kernel.process(pid)?.main_tid();
//! kernel.process_mut(pid)?.setup_memory(MemoryLayout::default(), true)?;
//!
//! let fd = kernel.syscall(pid, tid, Syscall::Socket)?.as_fd().unwrap();
//! kernel.syscall(pid, tid, Syscall::Bind { fd, port: 8080 })?;
//! kernel.syscall(pid, tid, Syscall::Listen { fd })?;
//!
//! let conn = kernel.client_connect(8080)?;
//! kernel.client_send(conn, b"ping".to_vec())?;
//! let accepted = kernel.syscall(pid, tid, Syscall::Accept { fd })?.as_fd().unwrap();
//! assert!(kernel.client_is_accepted(conn));
//! # let _ = accepted;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod alloc;
pub mod clock;
pub mod error;
pub mod fd;
pub mod ids;
pub mod kernel;
pub mod memory;
pub mod objects;
pub mod process;
pub mod store;
pub mod syscall;

pub use alloc::{
    AllocSite, AllocStats, ChunkInfo, PoolId, PtMalloc, RegionAllocator, SlabAllocator, TypeTag,
};
pub use clock::{SimDuration, SimInstant, VirtualClock};
pub use error::{SimError, SimResult};
pub use fd::{FdEntry, FdTable};
pub use ids::{ConnId, Fd, ObjId, Pid, Tid, RESERVED_FD_BASE};
pub use kernel::{ClientSnapshot, FdPlacement, Kernel};
pub use memory::{Addr, AddressSpace, DirtyRange, MemoryRegion, PendingTrap, RegionKind, PAGE_SIZE};
pub use objects::{KernelObject, ObjectTable, UnixMessage};
pub use process::{MemoryLayout, Process, Thread, ThreadState};
pub use store::{FsStore, MemStore, Store, StoreError, WriteFault, BLOCK_SIZE};
pub use syscall::{Syscall, SyscallPort, SyscallRet};
