//! Durable blob storage for checkpoints.
//!
//! The checkpoint serializer in `mcr-core` persists manifests and page-delta
//! shards through the [`Store`] trait. Two backends implement it:
//!
//! * [`MemStore`] — an in-memory simulated disk whose writes go down in
//!   fixed-size blocks and whose failure behaviour is *injectable*: a write
//!   fault can crash the store before the n-th block ([`WriteFault::CrashAt`])
//!   or persist a torn, half-garbage n-th block and then crash
//!   ([`WriteFault::TornAt`]). [`Store::sync`] is the fsync barrier the
//!   checkpoint commit protocol orders its writes around.
//! * [`FsStore`] — a thin real-filesystem backend behind the same trait, for
//!   checkpoints that must survive the host process.
//!
//! The crash model is deliberately adversarial: blocks written before a crash
//! *persist* (truncated or torn blobs remain visible after [`Store::recover`]),
//! so a reader can never rely on "crash means the blob vanished" — it must
//! validate lengths and checksums. This is exactly the failure surface the
//! crash-consistency chaos campaign enumerates.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Size of one simulated disk block. Writes are charged, torn and crashed at
/// this granularity.
pub const BLOCK_SIZE: usize = 4096;

/// Errors surfaced by a [`Store`] backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The store crashed (an injected write fault fired, or an operation was
    /// attempted after a crash and before [`Store::recover`]).
    Crashed {
        /// Blob being written when the crash fired (empty if the store was
        /// already down).
        blob: String,
        /// Global block counter value at the crash point (0 if already down).
        block: u64,
    },
    /// The named blob does not exist.
    NotFound(String),
    /// Backend I/O failure (real-filesystem backend only).
    Io(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Crashed { blob, block } => {
                write!(f, "store crashed at block {block} while writing {blob:?}")
            }
            StoreError::NotFound(name) => write!(f, "blob {name:?} not found"),
            StoreError::Io(msg) => write!(f, "store i/o error: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// An injectable write fault, armed via [`Store::arm_write_fault`].
///
/// Both variants count blocks on the store's *global* block counter (see
/// [`Store::blocks_written`]), so a fault site enumerated from one clean run
/// replays deterministically on the next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// Crash the store instead of writing the n-th block (1-based). Blocks
    /// written before it persist; the blob being written stays truncated.
    CrashAt(u64),
    /// Persist a *torn* n-th block — the first half of the block's bytes,
    /// then garbage — and crash. Models a partial sector write at power loss.
    TornAt(u64),
}

/// Filler byte for the garbage half of a torn block.
const TORN_FILL: u8 = 0xA5;

/// A durable blob store: named byte blobs, whole-blob writes, an explicit
/// fsync barrier, and (for fault-injectable backends) a write-fault hook.
pub trait Store {
    /// Writes (or overwrites) the named blob. On a crash fault the blob may
    /// be left truncated or torn — the error reports the crash point.
    fn write_blob(&mut self, name: &str, data: &[u8]) -> Result<(), StoreError>;

    /// Durability barrier: everything written before this call survives any
    /// later crash. The checkpoint commit protocol syncs shards *before*
    /// writing the manifest that names them.
    fn sync(&mut self) -> Result<(), StoreError>;

    /// Reads the named blob in full.
    fn read_blob(&self, name: &str) -> Result<Vec<u8>, StoreError>;

    /// All blob names, sorted.
    fn list(&self) -> Vec<String>;

    /// Deletes the named blob (checkpoint retention).
    fn delete_blob(&mut self, name: &str) -> Result<(), StoreError>;

    /// Total blocks written over the store's lifetime. Fault sites index
    /// into this counter.
    fn blocks_written(&self) -> u64 {
        0
    }

    /// Number of [`Store::sync`] barriers issued.
    fn sync_count(&self) -> u64 {
        0
    }

    /// Arms a one-shot write fault. Backends without fault injection ignore
    /// this (the default).
    fn arm_write_fault(&mut self, _fault: WriteFault) {}

    /// Disarms any armed write fault.
    fn disarm_write_fault(&mut self) {}

    /// Clears the crashed state after an injected crash, modelling a restart
    /// against the surviving (possibly torn or truncated) contents.
    fn recover(&mut self) {}
}

/// In-memory simulated disk with block-granular, fault-injectable writes.
#[derive(Debug, Default)]
pub struct MemStore {
    blobs: BTreeMap<String, Vec<u8>>,
    unsynced: BTreeSet<String>,
    armed: Option<WriteFault>,
    blocks_written: u64,
    syncs: u64,
    crashed: bool,
}

impl MemStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether an injected crash has fired and [`Store::recover`] has not
    /// yet been called.
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Directly corrupts one byte of a stored blob (test hook for checksum
    /// coverage: flips every bit of the byte at `offset`).
    pub fn corrupt_byte(&mut self, name: &str, offset: usize) -> Result<(), StoreError> {
        let blob = self.blobs.get_mut(name).ok_or_else(|| StoreError::NotFound(name.into()))?;
        if offset >= blob.len() {
            return Err(StoreError::Io(format!("corrupt offset {offset} past blob end {}", blob.len())));
        }
        blob[offset] ^= 0xFF;
        Ok(())
    }

    /// Directly truncates a stored blob to `len` bytes (test hook).
    pub fn truncate_blob(&mut self, name: &str, len: usize) -> Result<(), StoreError> {
        let blob = self.blobs.get_mut(name).ok_or_else(|| StoreError::NotFound(name.into()))?;
        blob.truncate(len);
        Ok(())
    }
}

impl Store for MemStore {
    fn write_blob(&mut self, name: &str, data: &[u8]) -> Result<(), StoreError> {
        if self.crashed {
            return Err(StoreError::Crashed { blob: String::new(), block: self.blocks_written });
        }
        // Overwrite semantics: the blob is rebuilt block by block, so a crash
        // mid-write leaves a short (truncated) blob behind.
        self.blobs.insert(name.to_string(), Vec::new());
        self.unsynced.insert(name.to_string());
        let chunks: Vec<&[u8]> = if data.is_empty() { vec![&[]] } else { data.chunks(BLOCK_SIZE).collect() };
        for chunk in chunks {
            let next = self.blocks_written + 1;
            match self.armed {
                Some(WriteFault::CrashAt(n)) if next == n => {
                    self.crashed = true;
                    self.armed = None;
                    return Err(StoreError::Crashed { blob: name.into(), block: n });
                }
                Some(WriteFault::TornAt(n)) if next == n => {
                    let blob = self.blobs.get_mut(name).expect("blob inserted above");
                    let half = chunk.len() / 2;
                    blob.extend_from_slice(&chunk[..half]);
                    blob.extend(std::iter::repeat_n(TORN_FILL, chunk.len() - half));
                    self.blocks_written = next;
                    self.crashed = true;
                    self.armed = None;
                    return Err(StoreError::Crashed { blob: name.into(), block: n });
                }
                _ => {
                    self.blobs.get_mut(name).expect("blob inserted above").extend_from_slice(chunk);
                    self.blocks_written = next;
                }
            }
        }
        Ok(())
    }

    fn sync(&mut self) -> Result<(), StoreError> {
        if self.crashed {
            return Err(StoreError::Crashed { blob: String::new(), block: self.blocks_written });
        }
        self.unsynced.clear();
        self.syncs += 1;
        Ok(())
    }

    fn read_blob(&self, name: &str) -> Result<Vec<u8>, StoreError> {
        self.blobs.get(name).cloned().ok_or_else(|| StoreError::NotFound(name.into()))
    }

    fn list(&self) -> Vec<String> {
        self.blobs.keys().cloned().collect()
    }

    fn delete_blob(&mut self, name: &str) -> Result<(), StoreError> {
        if self.crashed {
            return Err(StoreError::Crashed { blob: String::new(), block: self.blocks_written });
        }
        self.unsynced.remove(name);
        self.blobs.remove(name).map(|_| ()).ok_or_else(|| StoreError::NotFound(name.into()))
    }

    fn blocks_written(&self) -> u64 {
        self.blocks_written
    }

    fn sync_count(&self) -> u64 {
        self.syncs
    }

    fn arm_write_fault(&mut self, fault: WriteFault) {
        self.armed = Some(fault);
    }

    fn disarm_write_fault(&mut self) {
        self.armed = None;
    }

    fn recover(&mut self) {
        self.crashed = false;
        self.armed = None;
        self.unsynced.clear();
    }
}

/// Real-filesystem backend: blobs are files under a root directory. No fault
/// injection — crashes here are the host's business — but the same commit
/// protocol and validation apply.
#[derive(Debug)]
pub struct FsStore {
    root: std::path::PathBuf,
    blocks_written: u64,
    syncs: u64,
}

impl FsStore {
    /// Opens (creating if needed) a store rooted at `root`.
    pub fn open(root: impl Into<std::path::PathBuf>) -> Result<Self, StoreError> {
        let root = root.into();
        std::fs::create_dir_all(&root).map_err(|e| StoreError::Io(e.to_string()))?;
        Ok(FsStore { root, blocks_written: 0, syncs: 0 })
    }

    fn path_for(&self, name: &str) -> Result<std::path::PathBuf, StoreError> {
        if name.is_empty()
            || name.starts_with('/')
            || name.split('/').any(|c| c.is_empty() || c == "." || c == "..")
        {
            return Err(StoreError::Io(format!("invalid blob name {name:?}")));
        }
        Ok(self.root.join(name))
    }

    fn collect(&self, dir: &std::path::Path, prefix: &str, out: &mut Vec<String>) {
        let Ok(entries) = std::fs::read_dir(dir) else { return };
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            let rel = if prefix.is_empty() { name.clone() } else { format!("{prefix}/{name}") };
            let path = entry.path();
            if path.is_dir() {
                self.collect(&path, &rel, out);
            } else {
                out.push(rel);
            }
        }
    }
}

impl Store for FsStore {
    fn write_blob(&mut self, name: &str, data: &[u8]) -> Result<(), StoreError> {
        let path = self.path_for(name)?;
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).map_err(|e| StoreError::Io(e.to_string()))?;
        }
        std::fs::write(&path, data).map_err(|e| StoreError::Io(e.to_string()))?;
        self.blocks_written += (data.len().max(1) as u64).div_ceil(BLOCK_SIZE as u64);
        Ok(())
    }

    fn sync(&mut self) -> Result<(), StoreError> {
        // Directory-level barrier: fsync the root so renames/creates persist.
        let dir = std::fs::File::open(&self.root).map_err(|e| StoreError::Io(e.to_string()))?;
        dir.sync_all().map_err(|e| StoreError::Io(e.to_string()))?;
        self.syncs += 1;
        Ok(())
    }

    fn read_blob(&self, name: &str) -> Result<Vec<u8>, StoreError> {
        let path = self.path_for(name)?;
        match std::fs::read(&path) {
            Ok(data) => Ok(data),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Err(StoreError::NotFound(name.into())),
            Err(e) => Err(StoreError::Io(e.to_string())),
        }
    }

    fn list(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect(&self.root.clone(), "", &mut out);
        out.sort();
        out
    }

    fn delete_blob(&mut self, name: &str) -> Result<(), StoreError> {
        let path = self.path_for(name)?;
        match std::fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Err(StoreError::NotFound(name.into())),
            Err(e) => Err(StoreError::Io(e.to_string())),
        }
    }

    fn blocks_written(&self) -> u64 {
        self.blocks_written
    }

    fn sync_count(&self) -> u64 {
        self.syncs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip_and_block_accounting() {
        let mut s = MemStore::new();
        let data = vec![7u8; BLOCK_SIZE * 2 + 10];
        s.write_blob("a/b", &data).unwrap();
        assert_eq!(s.read_blob("a/b").unwrap(), data);
        assert_eq!(s.blocks_written(), 3);
        s.sync().unwrap();
        assert_eq!(s.sync_count(), 1);
        assert_eq!(s.list(), vec!["a/b".to_string()]);
    }

    #[test]
    fn crash_at_block_truncates_and_blocks_further_writes() {
        let mut s = MemStore::new();
        s.arm_write_fault(WriteFault::CrashAt(2));
        let data = vec![3u8; BLOCK_SIZE * 3];
        let err = s.write_blob("x", &data).unwrap_err();
        assert_eq!(err, StoreError::Crashed { blob: "x".into(), block: 2 });
        // One block persisted; the blob survives truncated.
        assert_eq!(s.read_blob("x").unwrap().len(), BLOCK_SIZE);
        assert!(matches!(s.write_blob("y", b"z"), Err(StoreError::Crashed { .. })));
        assert!(matches!(s.sync(), Err(StoreError::Crashed { .. })));
        s.recover();
        s.write_blob("y", b"z").unwrap();
        assert_eq!(s.read_blob("y").unwrap(), b"z");
    }

    #[test]
    fn torn_write_persists_half_garbage_block() {
        let mut s = MemStore::new();
        s.arm_write_fault(WriteFault::TornAt(1));
        let data = vec![0x11u8; BLOCK_SIZE];
        assert!(s.write_blob("t", &data).is_err());
        let stored = s.read_blob("t").unwrap();
        assert_eq!(stored.len(), BLOCK_SIZE);
        assert_eq!(&stored[..BLOCK_SIZE / 2], &data[..BLOCK_SIZE / 2]);
        assert!(stored[BLOCK_SIZE / 2..].iter().all(|&b| b == TORN_FILL));
    }

    #[test]
    fn corruption_hooks() {
        let mut s = MemStore::new();
        s.write_blob("c", &[1, 2, 3, 4]).unwrap();
        s.corrupt_byte("c", 2).unwrap();
        assert_eq!(s.read_blob("c").unwrap(), vec![1, 2, !3, 4]);
        s.truncate_blob("c", 1).unwrap();
        assert_eq!(s.read_blob("c").unwrap(), vec![1]);
        assert!(s.corrupt_byte("missing", 0).is_err());
    }

    #[test]
    fn fs_store_roundtrip() {
        let dir = std::env::temp_dir().join(format!("mcr-fsstore-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut s = FsStore::open(&dir).unwrap();
        s.write_blob("v1/MANIFEST", b"hello").unwrap();
        s.sync().unwrap();
        assert_eq!(s.read_blob("v1/MANIFEST").unwrap(), b"hello");
        assert_eq!(s.list(), vec!["v1/MANIFEST".to_string()]);
        assert!(matches!(s.read_blob("v1/none"), Err(StoreError::NotFound(_))));
        assert!(s.path_for("../escape").is_err());
        s.delete_blob("v1/MANIFEST").unwrap();
        assert!(s.list().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
