//! The simulated system-call interface.
//!
//! Programs running on the simulator issue [`Syscall`] values through a
//! [`SyscallPort`]; the kernel executes them and returns a [`SyscallRet`].
//! MCR's record/replay machinery interposes on this interface exactly like
//! the paper's `libmcr.so` interposes on libc: during startup in the old
//! version every call is appended to the startup log, and during mutable
//! reinitialization in the new version calls are matched against that log and
//! replayed (returning the recorded result) or executed live.

use crate::error::SimResult;
use crate::ids::{Fd, Pid, Tid};
use crate::memory::Addr;

/// A system call with its (deeply comparable) arguments.
///
/// Arguments are plain values, so the "deep comparison of syscall arguments"
/// performed by mutable reinitialization when matching log entries reduces to
/// structural equality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Syscall {
    /// Create a TCP listening socket (unbound).
    Socket,
    /// Bind a socket to a port.
    Bind {
        /// Socket descriptor.
        fd: Fd,
        /// Port to bind.
        port: u16,
    },
    /// Start listening on a bound socket.
    Listen {
        /// Socket descriptor.
        fd: Fd,
    },
    /// Accept a pending connection (non-blocking in the simulator; blocking
    /// semantics are layered on top by unblockification).
    Accept {
        /// Listening socket descriptor.
        fd: Fd,
    },
    /// Open a file in the simulated file system.
    Open {
        /// File path.
        path: String,
        /// Create the file if it does not exist.
        create: bool,
    },
    /// Read up to `len` bytes from a file descriptor.
    Read {
        /// Descriptor.
        fd: Fd,
        /// Maximum bytes to read.
        len: usize,
    },
    /// Write bytes to a file or connection descriptor.
    Write {
        /// Descriptor.
        fd: Fd,
        /// Payload.
        data: Vec<u8>,
    },
    /// Close a descriptor.
    Close {
        /// Descriptor.
        fd: Fd,
    },
    /// Duplicate `old` onto `new` (closing `new` first if open).
    Dup2 {
        /// Source descriptor.
        old: Fd,
        /// Target descriptor number.
        new: Fd,
    },
    /// Set or clear the close-on-exec flag.
    SetCloexec {
        /// Descriptor.
        fd: Fd,
        /// New flag value.
        on: bool,
    },
    /// Fork the calling process.
    Fork,
    /// Create a new thread in the calling process.
    SpawnThread {
        /// Thread name.
        name: String,
    },
    /// Return the caller's pid.
    Getpid,
    /// Terminate the calling process.
    Exit {
        /// Exit code.
        code: i32,
    },
    /// Map an anonymous memory region.
    Mmap {
        /// Length in bytes.
        size: u64,
        /// Region name (diagnostics).
        name: String,
        /// `MAP_FIXED`-style placement request.
        fixed: Option<Addr>,
    },
    /// Unmap a region previously mapped at `base`.
    Munmap {
        /// Region base.
        base: Addr,
    },
    /// Bind a named Unix-domain channel.
    UnixBind {
        /// Abstract channel name.
        name: String,
    },
    /// Connect to a named Unix-domain channel.
    UnixConnect {
        /// Abstract channel name.
        name: String,
    },
    /// Send a datagram (optionally passing descriptors) on a Unix channel.
    UnixSend {
        /// Channel descriptor (from [`Syscall::UnixConnect`] or [`Syscall::UnixBind`]).
        fd: Fd,
        /// Payload.
        data: Vec<u8>,
        /// Descriptors to pass (SCM_RIGHTS).
        pass_fds: Vec<Fd>,
    },
    /// Receive one queued datagram from a Unix channel.
    UnixRecv {
        /// Channel descriptor.
        fd: Fd,
    },
    /// Become a session leader (daemonization step).
    SetSid,
    /// Sleep for a number of simulated nanoseconds.
    Nanosleep {
        /// Duration in nanoseconds.
        ns: u64,
    },
}

impl Syscall {
    /// The syscall's name, used in startup-log diagnostics and conflict
    /// reports.
    pub fn name(&self) -> &'static str {
        match self {
            Syscall::Socket => "socket",
            Syscall::Bind { .. } => "bind",
            Syscall::Listen { .. } => "listen",
            Syscall::Accept { .. } => "accept",
            Syscall::Open { .. } => "open",
            Syscall::Read { .. } => "read",
            Syscall::Write { .. } => "write",
            Syscall::Close { .. } => "close",
            Syscall::Dup2 { .. } => "dup2",
            Syscall::SetCloexec { .. } => "fcntl",
            Syscall::Fork => "fork",
            Syscall::SpawnThread { .. } => "pthread_create",
            Syscall::Getpid => "getpid",
            Syscall::Exit { .. } => "exit",
            Syscall::Mmap { .. } => "mmap",
            Syscall::Munmap { .. } => "munmap",
            Syscall::UnixBind { .. } => "unix_bind",
            Syscall::UnixConnect { .. } => "unix_connect",
            Syscall::UnixSend { .. } => "unix_send",
            Syscall::UnixRecv { .. } => "unix_recv",
            Syscall::SetSid => "setsid",
            Syscall::Nanosleep { .. } => "nanosleep",
        }
    }

    /// The descriptor a blocking variant of this call waits on, if any.
    ///
    /// When such a call fails with [`crate::SimError::WouldBlock`], the
    /// kernel parks the calling thread on the descriptor's kernel object so
    /// that the next state change on that object (client connect, client
    /// send, peer close, queued datagram) produces a wakeup instead of
    /// requiring the scheduler to re-poll the thread.
    pub fn blocking_fd(&self) -> Option<Fd> {
        match self {
            Syscall::Accept { fd } | Syscall::Read { fd, .. } | Syscall::UnixRecv { fd } => Some(*fd),
            _ => None,
        }
    }

    /// Whether the call creates or manipulates an *immutable state object*
    /// (descriptors, pids, pinned memory): only such calls participate in
    /// mutable reinitialization's replay (paper §5).
    pub fn touches_immutable_state(&self) -> bool {
        matches!(
            self,
            Syscall::Socket
                | Syscall::Bind { .. }
                | Syscall::Listen { .. }
                | Syscall::Open { .. }
                | Syscall::Dup2 { .. }
                | Syscall::SetCloexec { .. }
                | Syscall::Fork
                | Syscall::SpawnThread { .. }
                | Syscall::Getpid
                | Syscall::Mmap { .. }
                | Syscall::UnixBind { .. }
                | Syscall::SetSid
                | Syscall::Close { .. }
        )
    }
}

/// The result of a successfully executed system call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyscallRet {
    /// No interesting return value.
    Unit,
    /// A file descriptor.
    Fd(Fd),
    /// A process id (`fork` in the parent, `getpid`).
    Pid(Pid),
    /// A thread id.
    Tid(Tid),
    /// Bytes read / received.
    Data(Vec<u8>),
    /// Bytes plus passed descriptors (Unix datagram with SCM_RIGHTS).
    DataWithFds(Vec<u8>, Vec<Fd>),
    /// A mapped address.
    Addr(Addr),
    /// Number of bytes written.
    Written(usize),
}

impl SyscallRet {
    /// Extracts a descriptor, if the result carries one.
    pub fn as_fd(&self) -> Option<Fd> {
        match self {
            SyscallRet::Fd(fd) => Some(*fd),
            _ => None,
        }
    }

    /// Extracts a pid, if the result carries one.
    pub fn as_pid(&self) -> Option<Pid> {
        match self {
            SyscallRet::Pid(p) => Some(*p),
            _ => None,
        }
    }

    /// Extracts an address, if the result carries one.
    pub fn as_addr(&self) -> Option<Addr> {
        match self {
            SyscallRet::Addr(a) => Some(*a),
            _ => None,
        }
    }
}

/// The interface through which simulated programs issue system calls.
///
/// The kernel implements it directly; MCR's runtime wraps a kernel port with
/// recording (old version) or replaying (new version) behaviour.
pub trait SyscallPort {
    /// Executes `call` on behalf of thread `tid` of process `pid`.
    ///
    /// # Errors
    ///
    /// Propagates the kernel's error for the failing call (bad descriptor,
    /// would-block, port in use, ...).
    fn syscall(&mut self, pid: Pid, tid: Tid, call: Syscall) -> SimResult<SyscallRet>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(Syscall::Socket.name(), "socket");
        assert_eq!(Syscall::Bind { fd: Fd(3), port: 80 }.name(), "bind");
        assert_eq!(Syscall::Fork.name(), "fork");
        assert_eq!(Syscall::UnixRecv { fd: Fd(1) }.name(), "unix_recv");
    }

    #[test]
    fn immutable_state_classification() {
        assert!(Syscall::Socket.touches_immutable_state());
        assert!(Syscall::Fork.touches_immutable_state());
        assert!(Syscall::Open { path: "/etc/conf".into(), create: false }.touches_immutable_state());
        assert!(!Syscall::Read { fd: Fd(0), len: 10 }.touches_immutable_state());
        assert!(!Syscall::Nanosleep { ns: 5 }.touches_immutable_state());
        assert!(!Syscall::Accept { fd: Fd(3) }.touches_immutable_state());
    }

    #[test]
    fn ret_extractors() {
        assert_eq!(SyscallRet::Fd(Fd(4)).as_fd(), Some(Fd(4)));
        assert_eq!(SyscallRet::Unit.as_fd(), None);
        assert_eq!(SyscallRet::Pid(Pid(2)).as_pid(), Some(Pid(2)));
        assert_eq!(SyscallRet::Addr(Addr(8)).as_addr(), Some(Addr(8)));
    }

    #[test]
    fn deep_argument_equality() {
        let a = Syscall::Bind { fd: Fd(3), port: 80 };
        let b = Syscall::Bind { fd: Fd(3), port: 80 };
        let c = Syscall::Bind { fd: Fd(3), port: 8080 };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
