//! Error types for the simulated operating-system substrate.

use std::fmt;

use crate::ids::{Fd, Pid, Tid};
use crate::memory::Addr;

/// Errors produced by the simulated kernel and memory subsystem.
///
/// The variants intentionally mirror the classes of failures a real
/// POSIX-style kernel would report (bad addresses, bad descriptors, unknown
/// processes) so that the MCR layers built on top exercise realistic error
/// handling paths.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are self-describing (addr, len, base, size)
pub enum SimError {
    /// An access touched an address that is not mapped in the address space.
    UnmappedAddress(Addr),
    /// An access ran past the end of a mapped region.
    OutOfBounds { addr: Addr, len: usize },
    /// A region could not be mapped because it overlaps an existing mapping.
    MappingOverlap { base: Addr, size: u64 },
    /// A write was attempted on a read-only region.
    ReadOnlyRegion(Addr),
    /// The simulated heap has no room left for the requested allocation.
    OutOfMemory { requested: u64 },
    /// An operation referenced a chunk address that is not a live allocation.
    InvalidFree(Addr),
    /// The process does not exist (or has already exited).
    NoSuchProcess(Pid),
    /// The thread does not exist within the target process.
    NoSuchThread(Pid, Tid),
    /// The file descriptor is not open in the calling process.
    BadFd(Fd),
    /// The requested file descriptor number is already in use.
    FdInUse(Fd),
    /// A socket operation was attempted on an object of the wrong kind.
    NotASocket(Fd),
    /// The referenced kernel object no longer exists.
    StaleObject(u64),
    /// The requested TCP/UDP port is already bound by another socket.
    PortInUse(u16),
    /// accept()/read() found nothing and the call would block.
    WouldBlock,
    /// The requested pid could not be assigned (namespace clash).
    PidUnavailable(Pid),
    /// The path does not exist in the simulated file system.
    NoSuchFile(String),
    /// Catch-all for invalid arguments to a syscall.
    InvalidArgument(String),
    /// The simulated program aborted (used by servers that detect a
    /// conflicting running instance, mirroring Apache httpd's behaviour).
    Aborted(String),
    /// A chaos-engine fault armed with [`crate::Kernel::arm_syscall_fault`]
    /// fired: the n-th syscall after arming was suppressed and failed with
    /// this error instead of executing.
    FaultInjected { nth: u64 },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnmappedAddress(a) => write!(f, "unmapped address {a}"),
            SimError::OutOfBounds { addr, len } => {
                write!(f, "access of {len} bytes at {addr} runs out of bounds")
            }
            SimError::MappingOverlap { base, size } => {
                write!(f, "mapping of {size} bytes at {base} overlaps an existing region")
            }
            SimError::ReadOnlyRegion(a) => write!(f, "write to read-only region at {a}"),
            SimError::OutOfMemory { requested } => {
                write!(f, "simulated heap exhausted while requesting {requested} bytes")
            }
            SimError::InvalidFree(a) => write!(f, "free of non-allocated chunk at {a}"),
            SimError::NoSuchProcess(p) => write!(f, "no such process {p}"),
            SimError::NoSuchThread(p, t) => write!(f, "no such thread {t} in process {p}"),
            SimError::BadFd(fd) => write!(f, "bad file descriptor {fd}"),
            SimError::FdInUse(fd) => write!(f, "file descriptor {fd} already in use"),
            SimError::NotASocket(fd) => write!(f, "descriptor {fd} is not a socket"),
            SimError::StaleObject(id) => write!(f, "kernel object {id} no longer exists"),
            SimError::PortInUse(p) => write!(f, "port {p} already in use"),
            SimError::WouldBlock => write!(f, "operation would block"),
            SimError::PidUnavailable(p) => write!(f, "pid {p} unavailable in namespace"),
            SimError::NoSuchFile(p) => write!(f, "no such file: {p}"),
            SimError::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            SimError::Aborted(m) => write!(f, "program aborted: {m}"),
            SimError::FaultInjected { nth } => {
                write!(f, "injected fault at syscall {nth} after arming")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Convenient result alias used throughout the simulator.
pub type SimResult<T> = Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_style() {
        let samples: Vec<SimError> = vec![
            SimError::UnmappedAddress(Addr(0x1000)),
            SimError::OutOfBounds { addr: Addr(0x2000), len: 16 },
            SimError::OutOfMemory { requested: 64 },
            SimError::BadFd(Fd(7)),
            SimError::WouldBlock,
            SimError::PortInUse(80),
            SimError::Aborted("another instance running".into()),
        ];
        for e in samples {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_trait_object_usable() {
        fn take(_e: &dyn std::error::Error) {}
        take(&SimError::WouldBlock);
    }
}
