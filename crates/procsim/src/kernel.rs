//! The simulated kernel: process table, object table, network edge, clock.
//!
//! The kernel is deliberately small but faithful in the aspects MCR depends
//! on: descriptor numbering and inheritance across `fork`, pid assignment
//! (including namespace-style forcing of the next pid), listening-socket
//! backlogs that survive a process switch, Unix-domain channels with
//! descriptor passing, and soft-dirty page bookkeeping delegated to each
//! process's address space.
//!
//! # Readiness substrate (wait queues, timer wheel, wake queue)
//!
//! The kernel also provides the event-driven scheduling substrate the MCR
//! runtime's `Scheduler` is built on:
//!
//! * **Per-object wait queues** — a blocking syscall (`Accept`, `Read`,
//!   `UnixRecv`) that fails with [`SimError::WouldBlock`] parks the calling
//!   `(Pid, Tid)` on the descriptor's kernel object
//!   ([`Kernel::wait_on_fd`]).
//! * **A timer wheel** keyed on [`SimInstant`] — timed blocks registered via
//!   [`Kernel::wait_until`] fire when [`Kernel::advance_clock`] moves the
//!   virtual clock past their deadline, instead of being re-polled.
//! * **A FIFO wake queue** — state changes (`client_connect`,
//!   `client_send`, peer close, queued Unix datagrams, pipe writes, expired
//!   timers) move the affected waiters onto a deduplicated FIFO queue that
//!   schedulers drain with [`Kernel::drain_wakeups_where`] (or, batched into
//!   a reusable buffer, [`Kernel::drain_wakeups_into`]).
//!
//! **Ordering contract.** Wake order is a pure function of the event
//! history, so simulated runs stay deterministic and reproducible regardless
//! of host scheduling. The guaranteed orders are: wakeups are delivered in
//! enqueue order (FIFO, deduplicated — a thread woken twice before being
//! scheduled runs once, at its first queue position); each object's waiter
//! list wakes in park order; timers fire in (deadline, registration) order;
//! and process, descriptor and object iteration is ascending-id. Since PR 6
//! the containers *behind* that contract are dense generation-checked slabs,
//! intrusive waiter lists and a bucketed timer wheel rather than ordered
//! maps — the orders above are the invariant, not the data structures, and
//! the property suite proves fingerprints are byte-identical to the old
//! ordered-map substrate.

use std::collections::{BTreeMap, VecDeque};

use crate::clock::{SimDuration, SimInstant, VirtualClock};
use crate::error::{SimError, SimResult};
use crate::ids::{ConnId, Fd, ObjId, Pid, Tid};
use crate::memory::{Addr, RegionKind};
use crate::objects::{KernelObject, ObjectTable, UnixMessage};
use crate::process::{Process, Thread, ThreadState};
use crate::syscall::{Syscall, SyscallPort, SyscallRet};

/// Where to place a descriptor transferred into another process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FdPlacement {
    /// Lowest free descriptor.
    Lowest,
    /// Exactly this descriptor number (fails if occupied).
    Exact(Fd),
    /// A fresh descriptor in the reserved (never reused) range.
    Reserved,
}

/// Client-side view of a workload connection.
#[derive(Debug, Clone, Default)]
struct ClientConn {
    port: u16,
    /// Data sent by the server, not yet consumed by the client.
    from_server: VecDeque<Vec<u8>>,
    accepted: bool,
    closed: bool,
}

/// Serializable snapshot of one client-side connection endpoint, exported
/// for checkpointing and re-installed on restore (see
/// [`Kernel::export_clients`] / [`Kernel::restore_clients`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientSnapshot {
    /// Workload connection id.
    pub conn: u64,
    /// Server port the connection was opened against.
    pub port: u16,
    /// Whether a server process has accepted the connection.
    pub accepted: bool,
    /// Whether the client closed its side.
    pub closed: bool,
    /// Server responses not yet consumed by the client.
    pub from_server: Vec<Vec<u8>>,
    /// Request bytes sent before the connection was accepted.
    pub pending_to_server: Vec<Vec<u8>>,
}

/// Slot-index sentinel ("none" / list end) shared by the kernel's intrusive
/// structures.
const NIL: u32 = u32::MAX;

/// First tid the kernel hands out; the dense wait table is indexed by
/// `tid - TID_BASE`.
const TID_BASE: u32 = 1000;

/// Timer-wheel bucket granularity: deadlines are grouped into
/// `2^TIMER_BUCKET_SHIFT`-nanosecond buckets (~65 µs). Entries within a
/// bucket are sorted by (deadline, registration) at fire time, so the wheel
/// delivers exactly the order a fully-sorted wheel would.
const TIMER_BUCKET_SHIFT: u32 = 16;

/// Where a blocked thread is parked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WaitTarget {
    /// Waiting for a state change on a kernel object (listener backlog,
    /// connection inbox, Unix channel, pipe).
    Object(ObjId),
    /// Waiting for the virtual clock to reach a deadline.
    Timer(SimInstant),
}

/// Per-thread wait bookkeeping, stored densely by `tid - TID_BASE`.
#[derive(Debug, Clone, Copy)]
struct WaitSlot {
    /// Owning pid (valid while registered or queued).
    pid: u32,
    /// Current registration, if any.
    target: Option<WaitTarget>,
    /// Registration sequence of the current timer target; a wheel entry
    /// whose (deadline, seq) no longer matches is stale (lazy cancellation).
    timer_seq: u64,
    /// Intrusive FIFO links within an object's waiter list (tid-indices).
    prev: u32,
    next: u32,
    /// Whether the thread sits on the wake queue (the dedup flag the old
    /// `wake_set` provided, now an O(1) bit).
    queued: bool,
}

impl Default for WaitSlot {
    fn default() -> Self {
        WaitSlot { pid: 0, target: None, timer_seq: 0, prev: NIL, next: NIL, queued: false }
    }
}

/// FIFO endpoints of one object's intrusive waiter list (tid-indices).
#[derive(Debug, Clone, Copy)]
struct WaiterList {
    head: u32,
    tail: u32,
}

impl Default for WaiterList {
    fn default() -> Self {
        WaiterList { head: NIL, tail: NIL }
    }
}

/// One parked timer registration. Entries are never removed on cancel; they
/// are validated against the thread's slot at fire/lookup time instead.
#[derive(Debug, Clone, Copy)]
struct TimerEntry {
    deadline: u64,
    seq: u64,
    pid: u32,
    tid: u32,
}

/// The kernel's readiness bookkeeping: who waits on what, and who has been
/// woken but not yet rescheduled.
///
/// A thread is registered on at most one target at a time; re-registering
/// moves it. Registrations live in a dense per-thread slot table; object
/// waiters form intrusive FIFO lists through those slots; timers sit on a
/// bucketed wheel with lazy cancellation. Wake order is deterministic — see
/// the module docs for the exact contract.
#[derive(Debug, Clone, Default)]
struct WaitState {
    /// Dense per-thread slots, indexed by `tid - TID_BASE`.
    slots: Vec<WaitSlot>,
    /// Per-object waiter-list endpoints, indexed by raw [`ObjId`].
    object_waiters: Vec<WaiterList>,
    /// Timer wheel: bucket (`deadline >> TIMER_BUCKET_SHIFT`) → entries.
    timer: BTreeMap<u64, Vec<TimerEntry>>,
    /// Monotonic registration counter tagging timer parks.
    timer_seq: u64,
    /// Number of threads currently registered on a target.
    registered: usize,
    /// Threads woken but not yet picked up by a scheduler, in wake order.
    wake_queue: VecDeque<(Pid, Tid)>,
    /// Total wakeups ever enqueued (statistics).
    wakeups_issued: u64,
}

impl WaitState {
    fn idx(tid: Tid) -> usize {
        debug_assert!(tid.0 >= TID_BASE, "wait registrations require kernel-allocated tids");
        (tid.0 - TID_BASE) as usize
    }

    fn slot_mut(&mut self, tid: Tid) -> &mut WaitSlot {
        let i = Self::idx(tid);
        if i >= self.slots.len() {
            self.slots.resize(i + 1, WaitSlot::default());
        }
        &mut self.slots[i]
    }

    /// Whether a wheel entry still describes its thread's live registration.
    fn timer_entry_valid(&self, e: &TimerEntry) -> bool {
        self.slots.get(Self::idx(Tid(e.tid))).is_some_and(|s| {
            s.timer_seq == e.seq && s.target == Some(WaitTarget::Timer(SimInstant(e.deadline)))
        })
    }

    fn cancel(&mut self, tid: Tid) {
        let i = Self::idx(tid);
        let Some(slot) = self.slots.get(i) else { return };
        match slot.target {
            None => return,
            Some(WaitTarget::Object(obj)) => {
                let (prev, next) = (slot.prev, slot.next);
                if prev != NIL {
                    self.slots[prev as usize].next = next;
                } else {
                    self.object_waiters[obj.0 as usize].head = next;
                }
                if next != NIL {
                    self.slots[next as usize].prev = prev;
                } else {
                    self.object_waiters[obj.0 as usize].tail = prev;
                }
            }
            // Timer entries are cancelled lazily: the wheel entry's
            // (deadline, seq) tag no longer matches the slot.
            Some(WaitTarget::Timer(_)) => {}
        }
        let slot = &mut self.slots[i];
        slot.target = None;
        slot.prev = NIL;
        slot.next = NIL;
        self.registered -= 1;
    }

    fn park(&mut self, pid: Pid, tid: Tid, target: WaitTarget) {
        self.cancel(tid);
        let i = Self::idx(tid);
        if i >= self.slots.len() {
            self.slots.resize(i + 1, WaitSlot::default());
        }
        match target {
            WaitTarget::Object(obj) => {
                let oi = obj.0 as usize;
                if oi >= self.object_waiters.len() {
                    self.object_waiters.resize(oi + 1, WaiterList::default());
                }
                let tail = self.object_waiters[oi].tail;
                {
                    let slot = &mut self.slots[i];
                    slot.pid = pid.0;
                    slot.target = Some(target);
                    slot.prev = tail;
                    slot.next = NIL;
                }
                if tail != NIL {
                    self.slots[tail as usize].next = i as u32;
                } else {
                    self.object_waiters[oi].head = i as u32;
                }
                self.object_waiters[oi].tail = i as u32;
            }
            WaitTarget::Timer(at) => {
                self.timer_seq += 1;
                let slot = &mut self.slots[i];
                slot.pid = pid.0;
                slot.target = Some(target);
                slot.timer_seq = self.timer_seq;
                self.timer.entry(at.0 >> TIMER_BUCKET_SHIFT).or_default().push(TimerEntry {
                    deadline: at.0,
                    seq: self.timer_seq,
                    pid: pid.0,
                    tid: tid.0,
                });
            }
        }
        self.registered += 1;
    }

    /// Appends a thread to the wake queue (deduplicated). The caller must
    /// have dropped the thread's registration already.
    fn push_wake(&mut self, pid: Pid, tid: Tid) {
        let slot = self.slot_mut(tid);
        if !slot.queued {
            slot.queued = true;
            slot.pid = pid.0;
            self.wake_queue.push_back((pid, tid));
            self.wakeups_issued += 1;
        }
    }

    /// Moves a thread onto the wake queue (dropping any registration).
    fn enqueue_wakeup(&mut self, pid: Pid, tid: Tid) {
        self.cancel(tid);
        self.push_wake(pid, tid);
    }

    /// Wakes every thread parked on `obj`, in FIFO (park) order. One walk of
    /// the intrusive list delivers the whole batch: no per-waiter map
    /// lookups, just slot-index chasing and the O(1) dedup bit.
    fn wake_object(&mut self, obj: ObjId) {
        let Some(list) = self.object_waiters.get_mut(obj.0 as usize) else { return };
        let mut cur = list.head;
        list.head = NIL;
        list.tail = NIL;
        while cur != NIL {
            let slot = &mut self.slots[cur as usize];
            let next = slot.next;
            let pid = Pid(slot.pid);
            slot.target = None;
            slot.prev = NIL;
            slot.next = NIL;
            self.registered -= 1;
            self.push_wake(pid, Tid(cur + TID_BASE));
            cur = next;
        }
    }

    /// Fires every timer with a deadline at or before `now`, in
    /// (deadline, registration) order.
    fn fire_due_timers(&mut self, now: u64) {
        let now_bucket = now >> TIMER_BUCKET_SHIFT;
        while let Some((&bucket, _)) = self.timer.iter().next() {
            if bucket > now_bucket {
                break;
            }
            let mut entries = self.timer.remove(&bucket).unwrap_or_default();
            if bucket == now_bucket {
                // Boundary bucket: keep the not-yet-due tail for later.
                let not_due: Vec<TimerEntry> = entries.iter().copied().filter(|e| e.deadline > now).collect();
                entries.retain(|e| e.deadline <= now);
                if !not_due.is_empty() {
                    self.timer.insert(bucket, not_due);
                }
            }
            entries.retain(|e| self.timer_entry_valid(e));
            entries.sort_unstable_by_key(|e| (e.deadline, e.seq));
            for e in entries {
                let i = Self::idx(Tid(e.tid));
                let slot = &mut self.slots[i];
                slot.target = None;
                self.registered -= 1;
                self.push_wake(Pid(e.pid), Tid(e.tid));
            }
            if bucket == now_bucket {
                break;
            }
        }
    }

    /// The earliest live deadline whose pid satisfies `pred`. Buckets
    /// partition the deadline space, so the first bucket holding a matching
    /// live entry contains the minimum.
    fn next_deadline_where(&self, mut pred: impl FnMut(Pid) -> bool) -> Option<SimInstant> {
        for entries in self.timer.values() {
            let min = entries
                .iter()
                .filter(|e| self.timer_entry_valid(e) && pred(Pid(e.pid)))
                .map(|e| e.deadline)
                .min();
            if let Some(ns) = min {
                return Some(SimInstant(ns));
            }
        }
        None
    }

    /// Drops every trace of a process's threads (process exit / teardown).
    /// The caller supplies the process's tids; queued wakeups of the pid are
    /// dropped wholesale.
    fn purge_threads(&mut self, pid: Pid, tids: impl IntoIterator<Item = Tid>) {
        for tid in tids {
            self.cancel(tid);
        }
        if self.wake_queue.iter().any(|&(p, _)| p == pid) {
            for (p, t) in std::mem::take(&mut self.wake_queue) {
                if p == pid {
                    self.slot_mut(t).queued = false;
                } else {
                    self.wake_queue.push_back((p, t));
                }
            }
        }
    }
}

/// The simulated kernel.
#[derive(Debug, Clone, Default)]
pub struct Kernel {
    /// Process slab: slot storage plus a free-list; `pid_to_slot` resolves a
    /// pid in O(1) and doubles as the ascending-pid iteration order.
    procs: Vec<Option<Process>>,
    proc_free: Vec<u32>,
    pid_to_slot: Vec<u32>,
    objects: ObjectTable,
    clock: VirtualClock,
    files: BTreeMap<String, Vec<u8>>,
    next_pid: u32,
    next_tid: u32,
    forced_next_pid: Option<u32>,
    next_conn: u64,
    clients: BTreeMap<u64, ClientConn>,
    /// Client request bytes sent before the connection was accepted.
    pending_client_data: BTreeMap<u64, VecDeque<Vec<u8>>>,
    /// Total syscalls executed (statistics).
    syscall_count: u64,
    /// Armed chaos fault: `(remaining, nth)` — the countdown until the next
    /// syscall fails with [`SimError::FaultInjected`], and the original
    /// n-th value for the error report. `None` when disarmed.
    syscall_fault: Option<(u64, u64)>,
    /// Readiness substrate: wait queues, timer wheel, wake queue.
    wait: WaitState,
}

impl Kernel {
    /// Boots an empty kernel.
    pub fn new() -> Self {
        Kernel {
            procs: Vec::new(),
            proc_free: Vec::new(),
            pid_to_slot: Vec::new(),
            objects: ObjectTable::new(),
            clock: VirtualClock::new(),
            files: BTreeMap::new(),
            next_pid: 100,
            next_tid: TID_BASE,
            forced_next_pid: None,
            next_conn: 1,
            clients: BTreeMap::new(),
            pending_client_data: BTreeMap::new(),
            syscall_count: 0,
            syscall_fault: None,
            wait: WaitState::default(),
        }
    }

    /// Resolves a pid to its process slot.
    fn proc_slot(&self, pid: Pid) -> Option<usize> {
        let s = *self.pid_to_slot.get(pid.0 as usize)?;
        (s != NIL).then_some(s as usize)
    }

    /// Installs a process into the slab under `pid`.
    fn insert_proc(&mut self, pid: Pid, proc: Process) {
        let slot = match self.proc_free.pop() {
            Some(s) => {
                self.procs[s as usize] = Some(proc);
                s
            }
            None => {
                self.procs.push(Some(proc));
                (self.procs.len() - 1) as u32
            }
        };
        let idx = pid.0 as usize;
        if idx >= self.pid_to_slot.len() {
            self.pid_to_slot.resize(idx + 1, NIL);
        }
        self.pid_to_slot[idx] = slot;
    }

    // ------------------------------------------------------------------
    // Clock and files
    // ------------------------------------------------------------------

    /// Current simulated time.
    pub fn now(&self) -> SimInstant {
        self.clock.now()
    }

    /// Advances the simulated clock (used by the scheduler and by MCR to
    /// account for work it performs on behalf of a program), firing any
    /// timer-wheel entries the advance passes over.
    pub fn advance_clock(&mut self, d: SimDuration) {
        self.clock.advance(d);
        self.wait.fire_due_timers(self.clock.now().0);
    }

    // ------------------------------------------------------------------
    // Readiness substrate: wait queues, timer wheel, wake queue
    // ------------------------------------------------------------------

    /// Parks thread `tid` of `pid` on the kernel object behind `fd` until a
    /// state change on that object wakes it. Blocking syscalls that fail
    /// with [`SimError::WouldBlock`] call this automatically; schedulers may
    /// also call it explicitly (idempotent: a thread waits on at most one
    /// target, re-registration moves it).
    ///
    /// # Errors
    ///
    /// Fails if the process or descriptor does not exist.
    pub fn wait_on_fd(&mut self, pid: Pid, tid: Tid, fd: Fd) -> SimResult<()> {
        let obj = self.process(pid)?.fds().get(fd)?.object;
        self.wait.park(pid, tid, WaitTarget::Object(obj));
        Ok(())
    }

    /// Parks thread `tid` of `pid` on the timer wheel until the virtual
    /// clock reaches `deadline`. A deadline that already passed enqueues an
    /// immediate wakeup.
    pub fn wait_until(&mut self, pid: Pid, tid: Tid, deadline: SimInstant) {
        if deadline <= self.clock.now() {
            self.wait.enqueue_wakeup(pid, tid);
        } else {
            self.wait.park(pid, tid, WaitTarget::Timer(deadline));
        }
    }

    /// Removes any wait-queue or timer registration of the thread (used when
    /// a scheduler decides to run it for another reason, e.g. the quiescence
    /// barrier's wake-everyone pass).
    pub fn cancel_wait(&mut self, pid: Pid, tid: Tid) {
        let _ = pid;
        self.wait.cancel(tid);
    }

    /// Removes and returns the queued wakeups whose pid satisfies `pred`, in
    /// wake order; non-matching wakeups stay queued for their own scheduler.
    pub fn drain_wakeups_where(&mut self, pred: impl FnMut(Pid) -> bool) -> Vec<(Pid, Tid)> {
        let mut out = Vec::new();
        self.drain_wakeups_into(pred, &mut out);
        out
    }

    /// Batched wake delivery: drains the matching wakeups into a
    /// caller-provided buffer (cleared first), so a scheduler's hot loop
    /// reuses one allocation per round instead of building a fresh vector.
    /// Delivery order and dedup semantics are identical to
    /// [`Kernel::drain_wakeups_where`].
    pub fn drain_wakeups_into(&mut self, mut pred: impl FnMut(Pid) -> bool, out: &mut Vec<(Pid, Tid)>) {
        out.clear();
        let n = self.wait.wake_queue.len();
        for _ in 0..n {
            let (pid, tid) = self.wait.wake_queue.pop_front().expect("queue holds n entries");
            if pred(pid) {
                self.wait.slot_mut(tid).queued = false;
                out.push((pid, tid));
            } else {
                self.wait.wake_queue.push_back((pid, tid));
            }
        }
    }

    /// The earliest pending timer-wheel deadline, if any (lets idle drivers
    /// advance the clock straight to the next event).
    pub fn next_timer_deadline(&self) -> Option<SimInstant> {
        self.wait.next_deadline_where(|_| true)
    }

    /// The earliest timer-wheel deadline registered by a thread whose pid
    /// satisfies `pred`, if any. An idle scheduler uses this to advance the
    /// virtual clock straight to its instance's next timed wakeup — without
    /// it, a fleet whose only pending work is a timer would sleep forever,
    /// since simulated time only moves when threads run.
    pub fn next_timer_deadline_where(&self, pred: impl FnMut(Pid) -> bool) -> Option<SimInstant> {
        self.wait.next_deadline_where(pred)
    }

    /// Number of threads currently parked on an object or timer.
    pub fn waiting_thread_count(&self) -> usize {
        self.wait.registered
    }

    /// Number of queued wakeups not yet drained by a scheduler.
    pub fn pending_wakeup_count(&self) -> usize {
        self.wait.wake_queue.len()
    }

    /// Total wakeups enqueued since boot (statistics).
    pub fn wakeups_issued(&self) -> u64 {
        self.wait.wakeups_issued
    }

    /// Installs a file in the simulated file system (configuration files,
    /// documents served by the web servers, ...).
    pub fn add_file(&mut self, path: impl Into<String>, contents: Vec<u8>) {
        self.files.insert(path.into(), contents);
    }

    /// Returns the contents of a simulated file.
    pub fn file_contents(&self, path: &str) -> Option<&[u8]> {
        self.files.get(path).map(|v| v.as_slice())
    }

    /// Number of syscalls executed so far.
    pub fn syscall_count(&self) -> u64 {
        self.syscall_count
    }

    // ------------------------------------------------------------------
    // Chaos fault injection
    // ------------------------------------------------------------------

    /// Arms a one-shot syscall fault: the `nth` syscall issued after this
    /// call (1-based) fails with [`SimError::FaultInjected`] *instead of*
    /// executing, leaving kernel and process state untouched. The fault
    /// disarms itself after firing; `nth == 0` is treated as disarm.
    pub fn arm_syscall_fault(&mut self, nth: u64) {
        self.syscall_fault = (nth > 0).then_some((nth, nth));
    }

    /// Disarms any pending syscall fault (idempotent). Called by update
    /// drivers on both the commit and rollback paths so a fault armed for
    /// one update attempt can never leak into steady-state serving.
    pub fn disarm_syscall_fault(&mut self) {
        self.syscall_fault = None;
    }

    /// Remaining syscalls before an armed fault fires, if one is armed.
    pub fn syscall_fault_remaining(&self) -> Option<u64> {
        self.syscall_fault.map(|(rem, _)| rem)
    }

    // ------------------------------------------------------------------
    // Process management
    // ------------------------------------------------------------------

    fn alloc_pid(&mut self) -> SimResult<Pid> {
        if let Some(p) = self.forced_next_pid.take() {
            if self.proc_slot(Pid(p)).is_some() {
                return Err(SimError::PidUnavailable(Pid(p)));
            }
            return Ok(Pid(p));
        }
        let p = self.next_pid;
        self.next_pid += 1;
        Ok(Pid(p))
    }

    fn alloc_tid(&mut self) -> Tid {
        let t = self.next_tid;
        self.next_tid += 1;
        Tid(t)
    }

    /// Forces the next pid assigned by `fork`/process creation, mimicking the
    /// Linux pid-namespace trick (`ns_last_pid`) used by user-space
    /// checkpoint-restart systems and by MCR's global inheritance of
    /// process ids.
    pub fn set_next_pid(&mut self, pid: Pid) {
        self.forced_next_pid = Some(pid.0);
    }

    /// Creates a fresh process running program `name`, returning its pid.
    ///
    /// # Errors
    ///
    /// Fails if a forced pid is already in use.
    pub fn create_process(&mut self, name: impl Into<String>) -> SimResult<Pid> {
        let pid = self.alloc_pid()?;
        let tid = self.alloc_tid();
        let proc = Process::new(pid, None, name, tid);
        self.insert_proc(pid, proc);
        Ok(pid)
    }

    /// Shared access to a process.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoSuchProcess`] if the pid is unknown.
    pub fn process(&self, pid: Pid) -> SimResult<&Process> {
        self.proc_slot(pid).and_then(|s| self.procs[s].as_ref()).ok_or(SimError::NoSuchProcess(pid))
    }

    /// Exclusive access to a process.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoSuchProcess`] if the pid is unknown.
    pub fn process_mut(&mut self, pid: Pid) -> SimResult<&mut Process> {
        match self.proc_slot(pid) {
            Some(s) => self.procs[s].as_mut().ok_or(SimError::NoSuchProcess(pid)),
            None => Err(SimError::NoSuchProcess(pid)),
        }
    }

    /// Iterates over all processes, in ascending pid order.
    pub fn processes(&self) -> impl Iterator<Item = &Process> {
        self.pid_to_slot
            .iter()
            .filter(|&&s| s != NIL)
            .map(|&s| self.procs[s as usize].as_ref().expect("live slot"))
    }

    /// All pids, ascending.
    pub fn pids(&self) -> Vec<Pid> {
        self.pid_to_slot.iter().enumerate().filter(|&(_, &s)| s != NIL).map(|(p, _)| Pid(p as u32)).collect()
    }

    /// Removes a process entirely (used when the old version is terminated
    /// after a successful live update, or when a failed new version is torn
    /// down on rollback). Its descriptors are released.
    pub fn remove_process(&mut self, pid: Pid) -> SimResult<()> {
        let slot = self.proc_slot(pid).ok_or(SimError::NoSuchProcess(pid))?;
        let proc = self.procs[slot].take().ok_or(SimError::NoSuchProcess(pid))?;
        self.pid_to_slot[pid.0 as usize] = NIL;
        self.proc_free.push(slot as u32);
        for (_, entry) in proc.fds().iter() {
            self.objects.decref(entry.object);
        }
        let tids: Vec<Tid> = proc.threads().map(|t| t.tid()).collect();
        self.wait.purge_threads(pid, tids);
        Ok(())
    }

    /// Direct access to the kernel object table (used by state inspection and
    /// tests; programs go through descriptors).
    pub fn objects(&self) -> &ObjectTable {
        &self.objects
    }

    /// Spawns an additional thread in `pid` (outside the syscall interface;
    /// prefer [`Syscall::SpawnThread`] from program code).
    pub fn spawn_thread(&mut self, pid: Pid, name: &str, creation_stack: Vec<String>) -> SimResult<Tid> {
        let tid = self.alloc_tid();
        let proc = self.process_mut(pid)?;
        proc.add_thread(tid, name, creation_stack);
        Ok(tid)
    }

    /// Convenience: the set of `(pid, tid)` pairs of all live threads.
    pub fn live_threads(&self) -> Vec<(Pid, Tid)> {
        let mut out = Vec::new();
        for proc in self.processes() {
            if proc.has_exited() {
                continue;
            }
            for t in proc.threads() {
                if !matches!(t.state(), ThreadState::Exited) {
                    out.push((proc.pid(), t.tid()));
                }
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Pre-copy write barrier (per-process write epochs)
    // ------------------------------------------------------------------

    /// Starts a new write epoch in `pid`'s address space and returns the
    /// previous one (see [`crate::AddressSpace::advance_write_epoch`]). The
    /// pre-copy phase of a live update calls this once per copy round per
    /// old-version process.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoSuchProcess`] if the pid is unknown.
    pub fn advance_write_epoch(&mut self, pid: Pid) -> SimResult<u64> {
        Ok(self.process_mut(pid)?.space_mut().advance_write_epoch())
    }

    /// The dirty page runs of `pid` written after epoch `since` (see
    /// [`crate::AddressSpace::drain_dirty_since`]). Despite the CRIU-flavored
    /// name this is a *read-only* delta query — nothing is cleared, because
    /// monotonically increasing epoch stamps make clearing unnecessary:
    /// asking "since a later epoch" next round naturally excludes what this
    /// round saw.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoSuchProcess`] if the pid is unknown.
    pub fn drain_dirty_since(&self, pid: Pid, since: u64) -> SimResult<Vec<crate::memory::DirtyRange>> {
        Ok(self.process(pid)?.space().drain_dirty_since(since))
    }

    // ------------------------------------------------------------------
    // Post-copy fault barrier (per-process page protection + trap queue)
    // ------------------------------------------------------------------

    /// Arms post-copy access traps over `[base, base+len)` in `pid`'s
    /// address space (see [`crate::AddressSpace::protect_range`]). The
    /// post-copy commit phase calls this over every not-yet-transferred
    /// object before resuming the new version.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoSuchProcess`] if the pid is unknown, or the
    /// underlying mapping error for a bad range.
    pub fn protect_range(&mut self, pid: Pid, base: Addr, len: u64) -> SimResult<()> {
        self.process_mut(pid)?.space_mut().protect_range(base, len)
    }

    /// Removes post-copy protection from `[base, base+len)` in `pid`'s
    /// address space once the content has been faulted in.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoSuchProcess`] if the pid is unknown, or the
    /// underlying mapping error for a bad range.
    pub fn unprotect_range(&mut self, pid: Pid, base: Addr, len: u64) -> SimResult<()> {
        self.process_mut(pid)?.space_mut().unprotect_range(base, len)
    }

    /// Drops every protection stamp in `pid`'s address space (drain
    /// complete, or rollback).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoSuchProcess`] if the pid is unknown.
    pub fn clear_protection(&mut self, pid: Pid) -> SimResult<()> {
        self.process_mut(pid)?.space_mut().clear_protection();
        Ok(())
    }

    /// Number of pages still protected in `pid`'s address space.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoSuchProcess`] if the pid is unknown.
    pub fn protected_page_count(&self, pid: Pid) -> SimResult<usize> {
        Ok(self.process(pid)?.space().protected_page_count())
    }

    /// Takes the stores parked by `pid`'s trap barrier, in program order
    /// (see [`crate::AddressSpace::take_pending_traps`]). The drainer
    /// services these with priority: fault in the touched objects, then
    /// replay the stores.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoSuchProcess`] if the pid is unknown.
    pub fn take_pending_traps(&mut self, pid: Pid) -> SimResult<Vec<crate::memory::PendingTrap>> {
        Ok(self.process_mut(pid)?.space_mut().take_pending_traps())
    }

    // ------------------------------------------------------------------
    // Borrow splitting (parallel per-process state transfer)
    // ------------------------------------------------------------------

    /// Hands out disjoint exclusive references to the given processes, in the
    /// order requested.
    ///
    /// This is the borrow-splitting primitive behind MCR's parallel
    /// per-process state transfer: each matched pair of a live update can be
    /// traced and transferred on its own thread because every worker owns
    /// `&mut` access to *its* processes only, while global kernel state
    /// (clock, object table, files) stays with the caller and is advanced
    /// deterministically after the workers join.
    ///
    /// # Errors
    ///
    /// Fails if any pid is unknown or listed twice (aliased exclusive access).
    pub fn split_processes(&mut self, pids: &[Pid]) -> SimResult<Vec<&mut Process>> {
        for (i, pid) in pids.iter().enumerate() {
            if self.proc_slot(*pid).is_none() {
                return Err(SimError::NoSuchProcess(*pid));
            }
            if pids[..i].contains(pid) {
                return Err(SimError::InvalidArgument(format!("pid {pid} requested twice")));
            }
        }
        let mut slots: Vec<Option<&mut Process>> = Vec::new();
        slots.resize_with(pids.len(), || None);
        for proc in self.procs.iter_mut().filter_map(Option::as_mut) {
            if let Some(i) = pids.iter().position(|p| *p == proc.pid()) {
                slots[i] = Some(proc);
            }
        }
        Ok(slots.into_iter().map(|s| s.expect("validated above")).collect())
    }

    /// Splits matched `(old, new)` process pairs into per-pair borrows:
    /// shared access to the old process (tracing only reads it) and exclusive
    /// access to the new one (state transfer writes into it).
    ///
    /// # Errors
    ///
    /// Fails if any pid is unknown or appears in more than one role.
    pub fn split_pairs(&mut self, pairs: &[(Pid, Pid)]) -> SimResult<Vec<(&Process, &mut Process)>> {
        let flat: Vec<Pid> = pairs.iter().flat_map(|&(old, new)| [old, new]).collect();
        let mut procs = self.split_processes(&flat)?.into_iter();
        let mut out = Vec::with_capacity(pairs.len());
        while let (Some(old), Some(new)) = (procs.next(), procs.next()) {
            out.push((old as &Process, new));
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Descriptor transfer between processes (Unix-socket fd passing)
    // ------------------------------------------------------------------

    /// Transfers (duplicates) a descriptor from one process to another.
    ///
    /// This models SCM_RIGHTS descriptor passing over a Unix-domain socket,
    /// the mechanism MCR uses to let the first process of the new version
    /// inherit every immutable descriptor of every old-version process.
    ///
    /// # Errors
    ///
    /// Fails if either process or the source descriptor does not exist, or if
    /// an exact placement collides with an open descriptor.
    pub fn transfer_fd(&mut self, from: Pid, from_fd: Fd, to: Pid, placement: FdPlacement) -> SimResult<Fd> {
        let entry = self.process(from)?.fds().get(from_fd)?;
        self.objects.incref(entry.object);
        let to_proc = match self.process_mut(to) {
            Ok(p) => p,
            Err(e) => {
                self.objects.decref(entry.object);
                return Err(e);
            }
        };
        let fd = match placement {
            FdPlacement::Lowest => to_proc.fds_mut().alloc(entry.object),
            FdPlacement::Reserved => to_proc.fds_mut().alloc_reserved(entry.object),
            FdPlacement::Exact(fd) => match to_proc.fds_mut().install_at(fd, entry.object, true) {
                Ok(()) => fd,
                Err(e) => {
                    self.objects.decref(entry.object);
                    return Err(e);
                }
            },
        };
        Ok(fd)
    }

    // ------------------------------------------------------------------
    // Client-side (workload) networking API
    // ------------------------------------------------------------------

    /// Opens a client connection to `port`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::PortInUse`]'s counterpart — here, a missing
    /// listener is reported as [`SimError::InvalidArgument`].
    pub fn client_connect(&mut self, port: u16) -> SimResult<ConnId> {
        let listener = self
            .objects
            .listener_for_port(port)
            .ok_or_else(|| SimError::InvalidArgument(format!("no listener on port {port}")))?;
        let conn = ConnId(self.next_conn);
        self.next_conn += 1;
        if let Some(KernelObject::Listener { backlog, .. }) = self.objects.get_mut(listener) {
            backlog.push_back(conn);
        }
        self.clients.insert(conn.0, ClientConn { port, ..Default::default() });
        // Accept readiness: wake every thread parked on the listener.
        self.wait.wake_object(listener);
        Ok(conn)
    }

    /// The server port a client connection was opened against.
    pub fn client_port(&self, conn: ConnId) -> Option<u16> {
        self.clients.get(&conn.0).map(|c| c.port)
    }

    /// Sends request bytes from the client side of `conn`.
    ///
    /// # Errors
    ///
    /// Fails for unknown or closed connections.
    pub fn client_send(&mut self, conn: ConnId, data: Vec<u8>) -> SimResult<()> {
        let state = self
            .clients
            .get(&conn.0)
            .ok_or(SimError::InvalidArgument(format!("unknown connection {conn}")))?;
        if state.closed {
            return Err(SimError::InvalidArgument(format!("connection {conn} closed")));
        }
        let port = state.port;
        if let Some(obj) = self.objects.connection_for(conn) {
            if let Some(KernelObject::Connection { inbox, .. }) = self.objects.get_mut(obj) {
                inbox.push_back(data);
                // Read readiness: wake every thread parked on the connection.
                self.wait.wake_object(obj);
                return Ok(());
            }
        }
        // Not yet accepted: queue the bytes until the server accepts; the
        // kernel hands them to the connection object at accept time. The
        // listener's waiters are (re-)woken so an acceptor picks it up.
        self.pending_client_data.entry(conn.0).or_default().push_back(data);
        if let Some(listener) = self.objects.listener_for_port(port) {
            self.wait.wake_object(listener);
        }
        Ok(())
    }

    /// Receives one server response chunk from the client side of `conn`.
    pub fn client_recv(&mut self, conn: ConnId) -> Option<Vec<u8>> {
        if let Some(obj) = self.objects.connection_for(conn) {
            if let Some(KernelObject::Connection { outbox, .. }) = self.objects.get_mut(obj) {
                return outbox.pop_front();
            }
        }
        self.clients.get_mut(&conn.0).and_then(|c| c.from_server.pop_front())
    }

    /// Closes the client side of `conn`.
    pub fn client_close(&mut self, conn: ConnId) -> SimResult<()> {
        if let Some(obj) = self.objects.connection_for(conn) {
            if let Some(KernelObject::Connection { peer_closed, .. }) = self.objects.get_mut(obj) {
                *peer_closed = true;
            }
            // EOF readiness: a parked reader wakes and observes the close.
            self.wait.wake_object(obj);
        }
        if let Some(c) = self.clients.get_mut(&conn.0) {
            c.closed = true;
        }
        Ok(())
    }

    /// Whether the connection has been accepted by a server process.
    pub fn client_is_accepted(&self, conn: ConnId) -> bool {
        self.objects.connection_for(conn).is_some()
    }

    /// Number of currently open (accepted and not closed) connections.
    pub fn open_connection_count(&self) -> usize {
        self.objects
            .iter()
            .filter(|(_, o)| matches!(o, KernelObject::Connection { peer_closed: false, .. }))
            .count()
    }

    // ------------------------------------------------------------------
    // Checkpoint-restore support
    // ------------------------------------------------------------------

    /// Exports the client-side connection endpoints (ascending connection
    /// id) for checkpoint serialization.
    pub fn export_clients(&self) -> Vec<ClientSnapshot> {
        self.clients
            .iter()
            .map(|(&conn, c)| ClientSnapshot {
                conn,
                port: c.port,
                accepted: c.accepted,
                closed: c.closed,
                from_server: c.from_server.iter().cloned().collect(),
                pending_to_server: self
                    .pending_client_data
                    .get(&conn)
                    .map(|q| q.iter().cloned().collect())
                    .unwrap_or_default(),
            })
            .collect()
    }

    /// Replaces the client-side connection tables wholesale from a
    /// checkpoint manifest (restore path).
    pub fn restore_clients(&mut self, snapshots: Vec<ClientSnapshot>) {
        self.clients.clear();
        self.pending_client_data.clear();
        for snap in snapshots {
            if !snap.pending_to_server.is_empty() {
                self.pending_client_data.insert(snap.conn, snap.pending_to_server.into_iter().collect());
            }
            self.clients.insert(
                snap.conn,
                ClientConn {
                    port: snap.port,
                    from_server: snap.from_server.into_iter().collect(),
                    accepted: snap.accepted,
                    closed: snap.closed,
                },
            );
        }
    }

    /// The next workload connection id the kernel will hand out.
    pub fn next_conn_id(&self) -> u64 {
        self.next_conn
    }

    /// Forces the next workload connection id (restore path; never lowered
    /// below the current value, so ids stay unique).
    pub fn set_next_conn_id(&mut self, next: u64) {
        self.next_conn = self.next_conn.max(next);
    }

    /// Paths of every file in the simulated file system, sorted.
    pub fn file_names(&self) -> Vec<String> {
        self.files.keys().cloned().collect()
    }

    /// Removes a simulated file; returns whether it existed (restore path:
    /// files created by the deterministic re-boot but absent from the
    /// manifest are dropped).
    pub fn remove_file(&mut self, path: &str) -> bool {
        self.files.remove(path).is_some()
    }

    /// Exclusive access to the kernel object table (checkpoint restore —
    /// programs go through descriptors, and the restore path is the only
    /// caller that may force ids and refcounts).
    pub fn objects_mut(&mut self) -> &mut ObjectTable {
        &mut self.objects
    }

    // ------------------------------------------------------------------
    // Syscall implementation
    // ------------------------------------------------------------------

    fn syscall_cost(call: &Syscall) -> SimDuration {
        let ns = match call {
            Syscall::Fork => 60_000,
            Syscall::SpawnThread { .. } => 20_000,
            Syscall::Open { .. } => 2_000,
            Syscall::Mmap { .. } | Syscall::Munmap { .. } => 3_000,
            Syscall::Nanosleep { ns } => *ns,
            Syscall::Read { .. } | Syscall::Write { .. } => 800,
            _ => 400,
        };
        SimDuration(ns)
    }

    fn exec_syscall(&mut self, pid: Pid, tid: Tid, call: Syscall) -> SimResult<SyscallRet> {
        match call {
            Syscall::Socket => {
                let obj = self.objects.insert(KernelObject::Listener {
                    port: 0,
                    listening: false,
                    backlog: VecDeque::new(),
                });
                let fd = self.process_mut(pid)?.fds_mut().alloc(obj);
                Ok(SyscallRet::Fd(fd))
            }
            Syscall::Bind { fd, port } => {
                if self.objects.listener_for_port(port).is_some() {
                    return Err(SimError::PortInUse(port));
                }
                let obj = self.process(pid)?.fds().get(fd)?.object;
                if self.objects.bind_listener(obj, port) {
                    Ok(SyscallRet::Unit)
                } else {
                    Err(SimError::NotASocket(fd))
                }
            }
            Syscall::Listen { fd } => {
                let obj = self.process(pid)?.fds().get(fd)?.object;
                if self.objects.set_listening(obj) {
                    Ok(SyscallRet::Unit)
                } else {
                    Err(SimError::NotASocket(fd))
                }
            }
            Syscall::Accept { fd } => {
                let obj = self.process(pid)?.fds().get(fd)?.object;
                let conn = match self.objects.get_mut(obj) {
                    Some(KernelObject::Listener { backlog, listening, .. }) => {
                        if !*listening {
                            return Err(SimError::NotASocket(fd));
                        }
                        backlog.pop_front().ok_or(SimError::WouldBlock)?
                    }
                    _ => return Err(SimError::NotASocket(fd)),
                };
                let pending = self.pending_client_data.remove(&conn.0).unwrap_or_default();
                let conn_obj = self.objects.insert(KernelObject::Connection {
                    conn,
                    inbox: pending,
                    outbox: VecDeque::new(),
                    peer_closed: false,
                });
                if let Some(c) = self.clients.get_mut(&conn.0) {
                    c.accepted = true;
                }
                let new_fd = self.process_mut(pid)?.fds_mut().alloc(conn_obj);
                Ok(SyscallRet::Fd(new_fd))
            }
            Syscall::Open { path, create } => {
                if !self.files.contains_key(&path) {
                    if create {
                        self.files.insert(path.clone(), Vec::new());
                    } else {
                        return Err(SimError::NoSuchFile(path));
                    }
                }
                let obj = self.objects.insert(KernelObject::File { path, offset: 0 });
                let fd = self.process_mut(pid)?.fds_mut().alloc(obj);
                Ok(SyscallRet::Fd(fd))
            }
            Syscall::Read { fd, len } => {
                let obj = self.process(pid)?.fds().get(fd)?.object;
                match self.objects.get_mut(obj) {
                    Some(KernelObject::File { path, offset }) => {
                        let contents = self.files.get(path.as_str()).cloned().unwrap_or_default();
                        let start = (*offset as usize).min(contents.len());
                        let end = (start + len).min(contents.len());
                        *offset = end as u64;
                        Ok(SyscallRet::Data(contents[start..end].to_vec()))
                    }
                    Some(KernelObject::Connection { inbox, peer_closed, .. }) => match inbox.pop_front() {
                        Some(data) => Ok(SyscallRet::Data(data)),
                        None if *peer_closed => Ok(SyscallRet::Data(Vec::new())),
                        None => Err(SimError::WouldBlock),
                    },
                    Some(KernelObject::Pipe { buffer }) => {
                        let n = len.min(buffer.len());
                        let data: Vec<u8> = buffer.drain(..n).collect();
                        if data.is_empty() {
                            Err(SimError::WouldBlock)
                        } else {
                            Ok(SyscallRet::Data(data))
                        }
                    }
                    _ => Err(SimError::BadFd(fd)),
                }
            }
            Syscall::Write { fd, data } => {
                let obj = self.process(pid)?.fds().get(fd)?.object;
                let len = data.len();
                match self.objects.get_mut(obj) {
                    Some(KernelObject::File { path, offset }) => {
                        let file = self.files.entry(path.clone()).or_default();
                        let off = *offset as usize;
                        if file.len() < off + len {
                            file.resize(off + len, 0);
                        }
                        file[off..off + len].copy_from_slice(&data);
                        *offset += len as u64;
                        Ok(SyscallRet::Written(len))
                    }
                    Some(KernelObject::Connection { outbox, conn, .. }) => {
                        let conn = *conn;
                        outbox.push_back(data.clone());
                        if let Some(c) = self.clients.get_mut(&conn.0) {
                            c.from_server.push_back(data);
                        }
                        Ok(SyscallRet::Written(len))
                    }
                    Some(KernelObject::Pipe { buffer }) => {
                        buffer.extend(data);
                        self.wait.wake_object(obj);
                        Ok(SyscallRet::Written(len))
                    }
                    _ => Err(SimError::BadFd(fd)),
                }
            }
            Syscall::Close { fd } => {
                let entry = self.process_mut(pid)?.fds_mut().remove(fd)?;
                self.objects.decref(entry.object);
                Ok(SyscallRet::Unit)
            }
            Syscall::Dup2 { old, new } => {
                let entry = self.process(pid)?.fds().get(old)?;
                self.objects.incref(entry.object);
                let proc = self.process_mut(pid)?;
                if let Some(prev) = proc.fds_mut().replace(new, entry.object, entry.inherited) {
                    self.objects.decref(prev.object);
                }
                Ok(SyscallRet::Fd(new))
            }
            Syscall::SetCloexec { fd, on } => {
                self.process_mut(pid)?.fds_mut().set_cloexec(fd, on)?;
                Ok(SyscallRet::Unit)
            }
            Syscall::Fork => {
                let child_pid = self.alloc_pid()?;
                let child_tid = self.alloc_tid();
                let parent = self.process(pid)?;
                let child = parent.fork_into(child_pid, child_tid, tid);
                // Every inherited descriptor references its object once more.
                for (_, entry) in child.fds().iter() {
                    self.objects.incref(entry.object);
                }
                self.insert_proc(child_pid, child);
                Ok(SyscallRet::Pid(child_pid))
            }
            Syscall::SpawnThread { name } => {
                let creation_stack =
                    self.process(pid)?.thread(tid).map(|t| t.call_stack().to_vec()).unwrap_or_default();
                let new_tid = self.alloc_tid();
                self.process_mut(pid)?.add_thread(new_tid, name, creation_stack);
                Ok(SyscallRet::Tid(new_tid))
            }
            Syscall::Getpid => Ok(SyscallRet::Pid(pid)),
            Syscall::Exit { code } => {
                self.process_mut(pid)?.set_exit(code);
                let tids: Vec<Tid> = self.process(pid)?.threads().map(|t| t.tid()).collect();
                self.wait.purge_threads(pid, tids);
                Ok(SyscallRet::Unit)
            }
            Syscall::Mmap { size, name, fixed } => {
                let proc = self.process_mut(pid)?;
                let base = match fixed {
                    Some(addr) => addr,
                    None => {
                        // Pick the first gap above the highest mapping.
                        let top = proc.space().regions().map(|r| r.end().0).max().unwrap_or(0x1000_0000);
                        Addr((top + 0xFFF) & !0xFFF)
                    }
                };
                proc.space_mut().map_region(base, size, RegionKind::Mmap, name)?;
                Ok(SyscallRet::Addr(base))
            }
            Syscall::Munmap { base } => {
                self.process_mut(pid)?.space_mut().unmap_region(base)?;
                Ok(SyscallRet::Unit)
            }
            Syscall::UnixBind { name } => {
                let obj = self.objects.insert(KernelObject::UnixChannel { name, inbox: VecDeque::new() });
                let fd = self.process_mut(pid)?.fds_mut().alloc(obj);
                Ok(SyscallRet::Fd(fd))
            }
            Syscall::UnixConnect { name } => {
                let obj =
                    self.objects.unix_channel(&name).ok_or(SimError::NoSuchFile(format!("unix:{name}")))?;
                self.objects.incref(obj);
                let fd = self.process_mut(pid)?.fds_mut().alloc(obj);
                Ok(SyscallRet::Fd(fd))
            }
            Syscall::UnixSend { fd, data, pass_fds } => {
                let entry = self.process(pid)?.fds().get(fd)?;
                let mut objects = Vec::new();
                for pfd in &pass_fds {
                    let e = self.process(pid)?.fds().get(*pfd)?;
                    self.objects.incref(e.object);
                    objects.push(e.object);
                }
                match self.objects.get_mut(entry.object) {
                    Some(KernelObject::UnixChannel { inbox, .. }) => {
                        inbox.push_back(UnixMessage { data, objects });
                        self.wait.wake_object(entry.object);
                        Ok(SyscallRet::Unit)
                    }
                    _ => Err(SimError::NotASocket(fd)),
                }
            }
            Syscall::UnixRecv { fd } => {
                let entry = self.process(pid)?.fds().get(fd)?;
                let msg = match self.objects.get_mut(entry.object) {
                    Some(KernelObject::UnixChannel { inbox, .. }) => {
                        inbox.pop_front().ok_or(SimError::WouldBlock)?
                    }
                    _ => return Err(SimError::NotASocket(fd)),
                };
                let proc = self.process_mut(pid)?;
                let mut fds = Vec::new();
                for obj in msg.objects {
                    fds.push(proc.fds_mut().alloc(obj));
                }
                Ok(SyscallRet::DataWithFds(msg.data, fds))
            }
            Syscall::SetSid => Ok(SyscallRet::Pid(pid)),
            Syscall::Nanosleep { .. } => Ok(SyscallRet::Unit),
        }
    }
}

impl SyscallPort for Kernel {
    fn syscall(&mut self, pid: Pid, tid: Tid, call: Syscall) -> SimResult<SyscallRet> {
        // Validate the caller exists before dispatch.
        let proc = self.process(pid)?;
        proc.thread(tid)?;
        if proc.has_exited() {
            return Err(SimError::NoSuchProcess(pid));
        }
        self.syscall_count += 1;
        // Chaos hook: an armed fault counts down and, at zero, suppresses
        // the syscall entirely — no memory write, no clock charge, no wait
        // registration — so the caller observes a clean mid-operation
        // failure with all kernel state exactly as it was before the call.
        if let Some((remaining, nth)) = self.syscall_fault.as_mut() {
            *remaining -= 1;
            if *remaining == 0 {
                let nth = *nth;
                self.syscall_fault = None;
                return Err(SimError::FaultInjected { nth });
            }
        }
        self.advance_clock(Self::syscall_cost(&call));
        let wait_fd = call.blocking_fd();
        let result = self.exec_syscall(pid, tid, call);
        // A failed blocking call registers the caller on the descriptor's
        // wait queue: the next state change on that object wakes the thread
        // instead of requiring the scheduler to re-poll it.
        if let (Err(SimError::WouldBlock), Some(fd)) = (&result, wait_fd) {
            let _ = self.wait_on_fd(pid, tid, fd);
        }
        result
    }
}

/// Helper re-exported for tests and higher layers: finds a thread anywhere in
/// the kernel.
pub fn find_thread(kernel: &Kernel, pid: Pid, tid: Tid) -> SimResult<&Thread> {
    kernel.process(pid)?.thread(tid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::MemoryLayout;

    fn booted() -> (Kernel, Pid, Tid) {
        let mut k = Kernel::new();
        let pid = k.create_process("testd").unwrap();
        let tid = k.process(pid).unwrap().main_tid();
        k.process_mut(pid).unwrap().setup_memory(MemoryLayout::default(), false).unwrap();
        (k, pid, tid)
    }

    #[test]
    fn socket_bind_listen_accept_cycle() {
        let (mut k, pid, tid) = booted();
        let fd = k.syscall(pid, tid, Syscall::Socket).unwrap().as_fd().unwrap();
        k.syscall(pid, tid, Syscall::Bind { fd, port: 80 }).unwrap();
        k.syscall(pid, tid, Syscall::Listen { fd }).unwrap();
        // Nothing pending yet.
        assert!(matches!(k.syscall(pid, tid, Syscall::Accept { fd }), Err(SimError::WouldBlock)));
        let conn = k.client_connect(80).unwrap();
        assert_eq!(k.client_port(conn), Some(80));
        assert_eq!(k.client_port(ConnId(9999)), None);
        k.client_send(conn, b"GET /index.html".to_vec()).unwrap();
        let cfd = k.syscall(pid, tid, Syscall::Accept { fd }).unwrap().as_fd().unwrap();
        let data = match k.syscall(pid, tid, Syscall::Read { fd: cfd, len: 1024 }).unwrap() {
            SyscallRet::Data(d) => d,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(data, b"GET /index.html".to_vec());
        k.syscall(pid, tid, Syscall::Write { fd: cfd, data: b"200 OK".to_vec() }).unwrap();
        assert_eq!(k.client_recv(conn).unwrap(), b"200 OK".to_vec());
        assert!(k.client_is_accepted(conn));
        assert_eq!(k.open_connection_count(), 1);
        k.client_close(conn).unwrap();
        assert_eq!(k.open_connection_count(), 0);
    }

    #[test]
    fn double_bind_same_port_fails() {
        let (mut k, pid, tid) = booted();
        let fd1 = k.syscall(pid, tid, Syscall::Socket).unwrap().as_fd().unwrap();
        k.syscall(pid, tid, Syscall::Bind { fd: fd1, port: 80 }).unwrap();
        k.syscall(pid, tid, Syscall::Listen { fd: fd1 }).unwrap();
        let fd2 = k.syscall(pid, tid, Syscall::Socket).unwrap().as_fd().unwrap();
        assert!(matches!(
            k.syscall(pid, tid, Syscall::Bind { fd: fd2, port: 80 }),
            Err(SimError::PortInUse(80))
        ));
    }

    #[test]
    fn file_read_write_roundtrip() {
        let (mut k, pid, tid) = booted();
        k.add_file("/etc/server.conf", b"workers=4\n".to_vec());
        let fd = k
            .syscall(pid, tid, Syscall::Open { path: "/etc/server.conf".into(), create: false })
            .unwrap()
            .as_fd()
            .unwrap();
        let data = match k.syscall(pid, tid, Syscall::Read { fd, len: 64 }).unwrap() {
            SyscallRet::Data(d) => d,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(data, b"workers=4\n".to_vec());
        assert!(k.syscall(pid, tid, Syscall::Open { path: "/missing".into(), create: false }).is_err());
    }

    #[test]
    fn fork_inherits_fds_and_memory() {
        let (mut k, pid, tid) = booted();
        let fd = k.syscall(pid, tid, Syscall::Socket).unwrap().as_fd().unwrap();
        k.syscall(pid, tid, Syscall::Bind { fd, port: 8080 }).unwrap();
        let child = k.syscall(pid, tid, Syscall::Fork).unwrap().as_pid().unwrap();
        assert_ne!(child, pid);
        let centry = k.process(child).unwrap().fds().get(fd).unwrap();
        let pentry = k.process(pid).unwrap().fds().get(fd).unwrap();
        assert_eq!(centry.object, pentry.object, "fork shares the kernel object");
        assert_eq!(k.objects().refcount(centry.object), 2);
    }

    #[test]
    fn forced_pid_assignment() {
        let (mut k, pid, tid) = booted();
        k.set_next_pid(Pid(4242));
        let child = k.syscall(pid, tid, Syscall::Fork).unwrap().as_pid().unwrap();
        assert_eq!(child, Pid(4242));
        // Forcing an already-used pid fails.
        k.set_next_pid(pid);
        assert!(matches!(k.syscall(pid, tid, Syscall::Fork), Err(SimError::PidUnavailable(_))));
    }

    #[test]
    fn unix_channel_with_fd_passing() {
        let (mut k, pid, tid) = booted();
        let listener_fd = k.syscall(pid, tid, Syscall::Socket).unwrap().as_fd().unwrap();
        let chan = k.syscall(pid, tid, Syscall::UnixBind { name: "mcr".into() }).unwrap().as_fd().unwrap();
        // A second process connects and receives the passed descriptor.
        let other = k.create_process("peer").unwrap();
        let other_tid = k.process(other).unwrap().main_tid();
        let conn = k
            .syscall(other, other_tid, Syscall::UnixConnect { name: "mcr".into() })
            .unwrap()
            .as_fd()
            .unwrap();
        k.syscall(
            pid,
            tid,
            Syscall::UnixSend { fd: chan, data: b"fds".to_vec(), pass_fds: vec![listener_fd] },
        )
        .unwrap();
        match k.syscall(other, other_tid, Syscall::UnixRecv { fd: conn }).unwrap() {
            SyscallRet::DataWithFds(data, fds) => {
                assert_eq!(data, b"fds".to_vec());
                assert_eq!(fds.len(), 1);
                let received = k.process(other).unwrap().fds().get(fds[0]).unwrap();
                let original = k.process(pid).unwrap().fds().get(listener_fd).unwrap();
                assert_eq!(received.object, original.object);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn transfer_fd_placements() {
        let (mut k, pid, tid) = booted();
        let fd = k.syscall(pid, tid, Syscall::Socket).unwrap().as_fd().unwrap();
        let other = k.create_process("new-version").unwrap();
        let reserved = k.transfer_fd(pid, fd, other, FdPlacement::Reserved).unwrap();
        assert!(reserved.is_reserved());
        let exact = k.transfer_fd(pid, fd, other, FdPlacement::Exact(Fd(7))).unwrap();
        assert_eq!(exact, Fd(7));
        assert!(k.transfer_fd(pid, fd, other, FdPlacement::Exact(Fd(7))).is_err());
        let lowest = k.transfer_fd(pid, fd, other, FdPlacement::Lowest).unwrap();
        assert_eq!(lowest, Fd(0));
        let obj = k.process(pid).unwrap().fds().get(fd).unwrap().object;
        assert_eq!(k.objects().refcount(obj), 4);
    }

    #[test]
    fn mmap_and_munmap() {
        let (mut k, pid, tid) = booted();
        let addr = k
            .syscall(pid, tid, Syscall::Mmap { size: 8192, name: "anon".into(), fixed: None })
            .unwrap()
            .as_addr()
            .unwrap();
        assert!(k.process(pid).unwrap().space().is_mapped(addr));
        let fixed = Addr(0x5555_0000_0000);
        let got = k
            .syscall(pid, tid, Syscall::Mmap { size: 4096, name: "fixed".into(), fixed: Some(fixed) })
            .unwrap()
            .as_addr()
            .unwrap();
        assert_eq!(got, fixed);
        k.syscall(pid, tid, Syscall::Munmap { base: fixed }).unwrap();
        assert!(!k.process(pid).unwrap().space().is_mapped(fixed));
    }

    #[test]
    fn exited_process_rejects_syscalls() {
        let (mut k, pid, tid) = booted();
        k.syscall(pid, tid, Syscall::Exit { code: 0 }).unwrap();
        assert!(k.syscall(pid, tid, Syscall::Getpid).is_err());
    }

    #[test]
    fn remove_process_releases_objects() {
        let (mut k, pid, tid) = booted();
        let fd = k.syscall(pid, tid, Syscall::Socket).unwrap().as_fd().unwrap();
        let obj = k.process(pid).unwrap().fds().get(fd).unwrap().object;
        assert_eq!(k.objects().refcount(obj), 1);
        k.remove_process(pid).unwrap();
        assert_eq!(k.objects().refcount(obj), 0);
        assert!(k.process(pid).is_err());
    }

    #[test]
    fn split_processes_hands_out_disjoint_exclusive_borrows() {
        let (mut k, pid, tid) = booted();
        let a = k.syscall(pid, tid, Syscall::Fork).unwrap().as_pid().unwrap();
        let b = k.syscall(pid, tid, Syscall::Fork).unwrap().as_pid().unwrap();
        {
            let mut procs = k.split_processes(&[b, a]).unwrap();
            assert_eq!(procs.len(), 2);
            assert_eq!(procs[0].pid(), b, "results follow request order");
            assert_eq!(procs[1].pid(), a);
            // Both exclusive borrows are usable at the same time.
            let (first, rest) = procs.split_at_mut(1);
            first[0].space_mut().clear_soft_dirty();
            rest[0].space_mut().clear_soft_dirty();
        }
        assert!(matches!(k.split_processes(&[a, Pid(9999)]), Err(SimError::NoSuchProcess(_))));
        assert!(matches!(k.split_processes(&[a, a]), Err(SimError::InvalidArgument(_))));
    }

    #[test]
    fn split_pairs_gives_shared_old_and_exclusive_new() {
        let (mut k, pid, tid) = booted();
        let old_b = k.syscall(pid, tid, Syscall::Fork).unwrap().as_pid().unwrap();
        let new_a = k.create_process("new").unwrap();
        let new_b = k.create_process("new").unwrap();
        k.process_mut(new_a).unwrap().setup_memory(MemoryLayout::with_slide(0x1000_0000), false).unwrap();
        k.process_mut(new_b).unwrap().setup_memory(MemoryLayout::with_slide(0x2000_0000), false).unwrap();
        let pairs = [(pid, new_a), (old_b, new_b)];
        let split = k.split_pairs(&pairs).unwrap();
        assert_eq!(split.len(), 2);
        for (i, (old, new)) in split.into_iter().enumerate() {
            assert_eq!(old.pid(), pairs[i].0);
            assert_eq!(new.pid(), pairs[i].1);
            let _ = old.space();
            new.space_mut().clear_soft_dirty();
        }
        // A pid may not appear in two pairs.
        assert!(k.split_pairs(&[(pid, new_a), (pid, new_b)]).is_err());
    }

    #[test]
    fn syscalls_advance_clock_and_counter() {
        let (mut k, pid, tid) = booted();
        let before = k.now();
        k.syscall(pid, tid, Syscall::Getpid).unwrap();
        k.syscall(pid, tid, Syscall::Nanosleep { ns: 1_000_000 }).unwrap();
        assert!(k.now() > before);
        assert_eq!(k.syscall_count(), 2);
    }

    #[test]
    fn blocked_accept_registers_waiter_and_connect_wakes_it() {
        let (mut k, pid, tid) = booted();
        let fd = k.syscall(pid, tid, Syscall::Socket).unwrap().as_fd().unwrap();
        k.syscall(pid, tid, Syscall::Bind { fd, port: 80 }).unwrap();
        k.syscall(pid, tid, Syscall::Listen { fd }).unwrap();
        assert!(matches!(k.syscall(pid, tid, Syscall::Accept { fd }), Err(SimError::WouldBlock)));
        assert_eq!(k.waiting_thread_count(), 1, "failed accept parked the caller");
        assert_eq!(k.pending_wakeup_count(), 0);
        let _conn = k.client_connect(80).unwrap();
        assert_eq!(k.waiting_thread_count(), 0);
        assert_eq!(k.pending_wakeup_count(), 1, "connect produced a wakeup");
        let woken = k.drain_wakeups_where(|p| p == pid);
        assert_eq!(woken, vec![(pid, tid)]);
        assert_eq!(k.pending_wakeup_count(), 0);
    }

    #[test]
    fn blocked_read_wakes_on_client_send_and_close() {
        let (mut k, pid, tid) = booted();
        let fd = k.syscall(pid, tid, Syscall::Socket).unwrap().as_fd().unwrap();
        k.syscall(pid, tid, Syscall::Bind { fd, port: 80 }).unwrap();
        k.syscall(pid, tid, Syscall::Listen { fd }).unwrap();
        let conn = k.client_connect(80).unwrap();
        let cfd = k.syscall(pid, tid, Syscall::Accept { fd }).unwrap().as_fd().unwrap();
        assert!(matches!(k.syscall(pid, tid, Syscall::Read { fd: cfd, len: 64 }), Err(SimError::WouldBlock)));
        assert_eq!(k.waiting_thread_count(), 1);
        k.client_send(conn, b"ping".to_vec()).unwrap();
        assert_eq!(k.drain_wakeups_where(|_| true), vec![(pid, tid)]);
        // Read the data, block again, then the peer close wakes the reader.
        let _ = k.syscall(pid, tid, Syscall::Read { fd: cfd, len: 64 }).unwrap();
        assert!(matches!(k.syscall(pid, tid, Syscall::Read { fd: cfd, len: 64 }), Err(SimError::WouldBlock)));
        k.client_close(conn).unwrap();
        assert_eq!(k.drain_wakeups_where(|_| true), vec![(pid, tid)]);
    }

    #[test]
    fn timer_wheel_fires_on_clock_advance() {
        let (mut k, pid, tid) = booted();
        let deadline = SimInstant(k.now().0 + 10_000);
        k.wait_until(pid, tid, deadline);
        assert_eq!(k.waiting_thread_count(), 1);
        assert_eq!(k.next_timer_deadline(), Some(deadline));
        k.advance_clock(SimDuration(5_000));
        assert_eq!(k.pending_wakeup_count(), 0, "deadline not reached yet");
        k.advance_clock(SimDuration(5_000));
        assert_eq!(k.pending_wakeup_count(), 1);
        assert_eq!(k.drain_wakeups_where(|_| true), vec![(pid, tid)]);
        assert_eq!(k.next_timer_deadline(), None);
        // An already-expired deadline wakes immediately.
        k.wait_until(pid, tid, SimInstant(0));
        assert_eq!(k.pending_wakeup_count(), 1);
    }

    #[test]
    fn reregistration_moves_a_thread_between_targets() {
        let (mut k, pid, tid) = booted();
        let fd = k.syscall(pid, tid, Syscall::Socket).unwrap().as_fd().unwrap();
        k.syscall(pid, tid, Syscall::Bind { fd, port: 80 }).unwrap();
        k.syscall(pid, tid, Syscall::Listen { fd }).unwrap();
        k.wait_on_fd(pid, tid, fd).unwrap();
        k.wait_until(pid, tid, SimInstant(k.now().0 + 1_000));
        assert_eq!(k.waiting_thread_count(), 1, "one registration per thread");
        // The fd registration was superseded: a connect wakes nobody.
        let _ = k.client_connect(80).unwrap();
        assert_eq!(k.pending_wakeup_count(), 0);
        k.cancel_wait(pid, tid);
        assert_eq!(k.waiting_thread_count(), 0);
    }

    #[test]
    fn filtered_timer_deadline_lookup_sees_only_matching_pids() {
        let (mut k, pid, tid) = booted();
        let other = k.create_process("peer").unwrap();
        let other_tid = k.process(other).unwrap().main_tid();
        let near = SimInstant(k.now().0 + 1_000);
        let far = SimInstant(k.now().0 + 9_000);
        k.wait_until(other, other_tid, near);
        k.wait_until(pid, tid, far);
        assert_eq!(k.next_timer_deadline(), Some(near));
        assert_eq!(k.next_timer_deadline_where(|p| p == pid), Some(far));
        assert_eq!(k.next_timer_deadline_where(|p| p == Pid(9999)), None);
    }

    #[test]
    fn per_process_write_epochs_report_only_the_delta() {
        let (mut k, pid, tid) = booted();
        let base = k
            .syscall(
                pid,
                tid,
                Syscall::Mmap { size: 4 * crate::memory::PAGE_SIZE, name: "d".into(), fixed: None },
            )
            .unwrap()
            .as_addr()
            .unwrap();
        k.process_mut(pid).unwrap().space_mut().clear_soft_dirty();
        k.process_mut(pid).unwrap().space_mut().write_u64(base, 1).unwrap();
        let upto = k.advance_write_epoch(pid).unwrap();
        assert!(k.drain_dirty_since(pid, upto).unwrap().is_empty(), "nothing written after the bump");
        k.process_mut(pid).unwrap().space_mut().write_u64(base.offset(crate::memory::PAGE_SIZE), 2).unwrap();
        let delta = k.drain_dirty_since(pid, upto).unwrap();
        assert_eq!(delta.len(), 1);
        assert_eq!(delta[0].base, base.offset(crate::memory::PAGE_SIZE));
        // Read-only: asking again reports the same delta.
        assert_eq!(k.drain_dirty_since(pid, upto).unwrap(), delta);
        assert!(matches!(k.advance_write_epoch(Pid(9999)), Err(SimError::NoSuchProcess(_))));
    }

    #[test]
    fn exit_and_removal_purge_wait_state() {
        let (mut k, pid, tid) = booted();
        let fd = k.syscall(pid, tid, Syscall::Socket).unwrap().as_fd().unwrap();
        k.syscall(pid, tid, Syscall::Bind { fd, port: 80 }).unwrap();
        k.syscall(pid, tid, Syscall::Listen { fd }).unwrap();
        k.wait_on_fd(pid, tid, fd).unwrap();
        k.syscall(pid, tid, Syscall::Exit { code: 0 }).unwrap();
        assert_eq!(k.waiting_thread_count(), 0, "exit purged the registration");
        let other = k.create_process("peer").unwrap();
        let other_tid = k.process(other).unwrap().main_tid();
        k.wait_until(other, other_tid, SimInstant(k.now().0 + 1_000));
        k.remove_process(other).unwrap();
        assert_eq!(k.waiting_thread_count(), 0, "removal purged the registration");
    }

    #[test]
    fn batched_wake_delivery_preserves_fifo_order_and_dedup() {
        let (mut k, pid, tid) = booted();
        let fd = k.syscall(pid, tid, Syscall::Socket).unwrap().as_fd().unwrap();
        k.syscall(pid, tid, Syscall::Bind { fd, port: 80 }).unwrap();
        k.syscall(pid, tid, Syscall::Listen { fd }).unwrap();
        // Three waiters parked on the listener, in spawn order.
        let waiters: Vec<Tid> =
            (0..3).map(|i| k.spawn_thread(pid, &format!("w{i}"), Vec::new()).unwrap()).collect();
        for &w in &waiters {
            k.wait_on_fd(pid, w, fd).unwrap();
        }
        // A second process whose wakeups must survive a foreign drain.
        let other = k.create_process("peer").unwrap();
        let other_tid = k.process(other).unwrap().main_tid();
        let o2 = k.spawn_thread(other, "o2", Vec::new()).unwrap();
        k.wait_until(other, other_tid, SimInstant(0));
        // One connect delivers the whole listener batch in park (FIFO) order.
        let _conn = k.client_connect(80).unwrap();
        // Direct wakeups after the batch keep global enqueue order...
        k.wait_until(other, o2, SimInstant(0));
        k.wait_until(pid, tid, SimInstant(0));
        // ...and re-waking an already queued thread is deduplicated.
        k.wait_until(pid, waiters[1], SimInstant(0));
        k.wait_until(pid, tid, SimInstant(0));
        assert_eq!(k.pending_wakeup_count(), 6, "dedup kept one entry per thread");

        let mut batch = Vec::new();
        k.drain_wakeups_into(|p| p == pid, &mut batch);
        let tids: Vec<Tid> = batch.iter().map(|&(_, t)| t).collect();
        assert_eq!(tids, vec![waiters[0], waiters[1], waiters[2], tid], "FIFO wake order");
        assert!(batch.iter().all(|&(p, _)| p == pid));
        // The other scheduler's wakeups are still queued, in their own order.
        assert_eq!(k.drain_wakeups_where(|p| p == other), vec![(other, other_tid), (other, o2)]);
        assert_eq!(k.pending_wakeup_count(), 0);
        // Delivery cleared the dedup bit: a delivered thread can be re-woken.
        k.wait_until(pid, waiters[1], SimInstant(0));
        assert_eq!(k.drain_wakeups_where(|_| true), vec![(pid, waiters[1])]);
    }

    #[test]
    fn waiters_exiting_between_enqueue_and_delivery_are_skipped() {
        let (mut k, pid, tid) = booted();
        let fd = k.syscall(pid, tid, Syscall::Socket).unwrap().as_fd().unwrap();
        k.syscall(pid, tid, Syscall::Bind { fd, port: 81 }).unwrap();
        k.syscall(pid, tid, Syscall::Listen { fd }).unwrap();
        let survivors: Vec<Tid> =
            (0..2).map(|i| k.spawn_thread(pid, &format!("s{i}"), Vec::new()).unwrap()).collect();
        let doomed = k.create_process("doomed").unwrap();
        let doomed_tid = k.process(doomed).unwrap().main_tid();
        let doomed_queued = k.spawn_thread(doomed, "dq", Vec::new()).unwrap();
        let dfd = k.transfer_fd(pid, fd, doomed, FdPlacement::Lowest).unwrap();
        // The doomed waiter parks *between* the survivors on the listener's
        // FIFO list; its sibling already sits on the wake queue.
        k.wait_on_fd(pid, survivors[0], fd).unwrap();
        k.wait_on_fd(doomed, doomed_tid, dfd).unwrap();
        k.wait_on_fd(pid, survivors[1], fd).unwrap();
        k.wait_until(doomed, doomed_queued, SimInstant(0));
        k.wait_until(pid, tid, SimInstant(0));
        assert_eq!(k.pending_wakeup_count(), 2);

        // The process exits between enqueue and delivery.
        k.remove_process(doomed).unwrap();
        assert_eq!(k.pending_wakeup_count(), 1, "the exiting process's queued wakeup was dropped");
        // The listener object survives (the survivors' descriptors hold it)
        // and its next batch wakes only live waiters, still in FIFO order.
        let _conn = k.client_connect(81).unwrap();
        let batch = k.drain_wakeups_where(|_| true);
        assert_eq!(batch, vec![(pid, tid), (pid, survivors[0]), (pid, survivors[1])]);
        assert_eq!(k.waiting_thread_count(), 0);
        assert_eq!(k.pending_wakeup_count(), 0);
    }

    #[test]
    fn armed_syscall_fault_fires_once_and_leaves_state_untouched() {
        let (mut k, pid, tid) = booted();
        k.arm_syscall_fault(3);
        assert_eq!(k.syscall_fault_remaining(), Some(3));
        k.syscall(pid, tid, Syscall::Getpid).unwrap();
        k.syscall(pid, tid, Syscall::Getpid).unwrap();
        assert_eq!(k.syscall_fault_remaining(), Some(1));
        let before_clock = k.now();
        // The doomed syscall would otherwise create a socket: it must not.
        let fd_count_before = k.process(pid).unwrap().fds().len();
        assert!(matches!(k.syscall(pid, tid, Syscall::Socket), Err(SimError::FaultInjected { nth: 3 })));
        assert_eq!(k.now(), before_clock, "suppressed syscall charges no time");
        assert_eq!(k.process(pid).unwrap().fds().len(), fd_count_before);
        assert_eq!(k.waiting_thread_count(), 0, "no wait registration from the fault");
        // Fault disarmed itself: the next syscall executes normally.
        assert_eq!(k.syscall_fault_remaining(), None);
        k.syscall(pid, tid, Syscall::Socket).unwrap();
        // Counting includes the suppressed call.
        assert_eq!(k.syscall_count(), 4);
    }

    #[test]
    fn syscall_fault_arm_zero_and_disarm_are_inert() {
        let (mut k, pid, tid) = booted();
        k.arm_syscall_fault(0);
        assert_eq!(k.syscall_fault_remaining(), None);
        k.arm_syscall_fault(2);
        k.disarm_syscall_fault();
        k.disarm_syscall_fault(); // idempotent
        k.syscall(pid, tid, Syscall::Getpid).unwrap();
        k.syscall(pid, tid, Syscall::Getpid).unwrap();
        k.syscall(pid, tid, Syscall::Getpid).unwrap();
    }

    #[test]
    fn timer_cancel_then_reregister_same_deadline_wakes_exactly_once() {
        let (mut k, pid, tid) = booted();
        let deadline = SimInstant(k.now().0 + 4_000);
        // Park, lazily cancel (the wheel entry stays), re-park at the *same*
        // deadline: the stale entry's seq no longer matches the slot, so
        // only the live registration may fire.
        k.wait_until(pid, tid, deadline);
        k.cancel_wait(pid, tid);
        k.wait_until(pid, tid, deadline);
        assert_eq!(k.waiting_thread_count(), 1);
        assert_eq!(k.next_timer_deadline(), Some(deadline), "stale entry invisible to lookup");
        k.advance_clock(SimDuration(4_000));
        assert_eq!(k.pending_wakeup_count(), 1, "exactly one wake despite two wheel entries");
        assert_eq!(k.drain_wakeups_where(|_| true), vec![(pid, tid)]);
        // No second wake materializes later from the stale entry.
        k.advance_clock(SimDuration(1_000_000));
        assert_eq!(k.pending_wakeup_count(), 0);
    }

    #[test]
    fn timer_cancelled_in_the_tick_it_would_fire_stays_cancelled() {
        let (mut k, pid, tid) = booted();
        let deadline = SimInstant(k.now().0 + 2_000);
        k.wait_until(pid, tid, deadline);
        k.cancel_wait(pid, tid);
        assert_eq!(k.waiting_thread_count(), 0);
        assert_eq!(k.next_timer_deadline(), None);
        // The advance that passes the cancelled deadline must not wake the
        // thread: `timer_entry_valid` filters the stale (seq, target) entry
        // in the same `fire_due_timers` pass.
        k.advance_clock(SimDuration(10_000));
        assert_eq!(k.pending_wakeup_count(), 0, "cancelled timer never fires");
        // A fresh registration by the same thread still works afterwards.
        let later = SimInstant(k.now().0 + 500);
        k.wait_until(pid, tid, later);
        k.advance_clock(SimDuration(500));
        assert_eq!(k.drain_wakeups_where(|_| true), vec![(pid, tid)]);
    }
}
