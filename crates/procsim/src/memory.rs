//! Simulated 64-bit virtual address spaces with soft-dirty page tracking.
//!
//! Each simulated process owns an [`AddressSpace`]: a set of non-overlapping
//! [`MemoryRegion`]s (static data, heap, stacks, memory mappings, shared
//! libraries). Every region tracks per-page *soft-dirty* state exactly like
//! the Linux `/proc/pid/pagemap` facility used by the paper: the state is
//! cleared once (after program startup) and the first write into a page
//! afterwards marks it dirty. Mutable tracing later uses the dirty state to
//! restrict state transfer to objects modified after startup.
//!
//! # Access traps (the post-copy fault barrier)
//!
//! Post-copy state transfer commits the new program version *before* its
//! state has arrived and pulls stale objects in on demand. The mechanism
//! here mirrors `userfaultfd`-style page protection: the update runtime arms
//! per-page protection stamps over the not-yet-transferred ranges
//! ([`AddressSpace::protect_range`]), and a store that hits a protected page
//! does not land — it is parked in a pending-trap buffer
//! ([`AddressSpace::take_pending_traps`]) exactly as a faulting thread would
//! block on the missing page. The fault handler (the drainer in
//! `mcr-core`) transfers the object, removes the protection
//! ([`AddressSpace::unprotect_range`]) and replays the parked store, so the
//! final bytes are written in the same order as a stop-the-world transfer:
//! quiesce-time content first, post-commit stores second. Loads are not
//! intercepted (the simulator's workloads are store-driven); the
//! [`AddressSpace::access_trap`] query lets callers check a range before a
//! read if they need the read barrier too.
//!
//! # Write epochs (the pre-copy write barrier)
//!
//! Instead of a boolean per page, each page stores the address space's
//! *write epoch* at the time of its last store (`0` = clean since the last
//! [`AddressSpace::clear_soft_dirty`]). The iterative pre-copy phase of a
//! live update bumps the epoch once per copy round
//! ([`AddressSpace::advance_write_epoch`]) and then asks only for the pages
//! written since a previous round ([`AddressSpace::drain_dirty_since`],
//! [`AddressSpace::range_dirty_epoch`]), which is what lets it re-copy only
//! the working set dirtied while the old version kept serving. The classic
//! "dirty since startup" queries are the `since == 0` special case, so the
//! stop-the-world paths are unchanged.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::{SimError, SimResult};

/// Size of a simulated memory page in bytes (matches Linux x86).
pub const PAGE_SIZE: u64 = 4096;

/// A simulated virtual address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr(pub u64);

impl Addr {
    /// The null address.
    pub const NULL: Addr = Addr(0);

    /// Returns the address advanced by `off` bytes.
    #[must_use]
    pub fn offset(self, off: u64) -> Addr {
        Addr(self.0 + off)
    }

    /// Returns the address of the page containing this address.
    #[must_use]
    pub fn page_base(self) -> Addr {
        Addr(self.0 & !(PAGE_SIZE - 1))
    }

    /// True if this address is aligned to `align` bytes.
    pub fn is_aligned(self, align: u64) -> bool {
        align != 0 && self.0.is_multiple_of(align)
    }

    /// True if this is the null address.
    pub fn is_null(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

impl From<u64> for Addr {
    fn from(v: u64) -> Self {
        Addr(v)
    }
}

/// The kind of a memory region; mutable tracing treats the kinds differently
/// (static objects are matched by symbol, heap objects by allocation site,
/// library regions are not traced by default).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionKind {
    /// Global/static program data (`.data`/`.bss`); one region per program.
    Static,
    /// The program heap managed by a simulated allocator.
    Heap,
    /// A thread stack.
    Stack,
    /// An anonymous or file-backed memory mapping (`mmap`).
    Mmap,
    /// A (possibly uninstrumented) shared library's data segment.
    Lib,
}

impl RegionKind {
    /// Short label used in reports and tracing statistics.
    pub fn label(self) -> &'static str {
        match self {
            RegionKind::Static => "static",
            RegionKind::Heap => "heap",
            RegionKind::Stack => "stack",
            RegionKind::Mmap => "mmap",
            RegionKind::Lib => "lib",
        }
    }
}

impl fmt::Display for RegionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A contiguous mapped range of the simulated address space.
#[derive(Debug, Clone)]
pub struct MemoryRegion {
    base: Addr,
    size: u64,
    kind: RegionKind,
    name: String,
    writable: bool,
    data: Vec<u8>,
    /// Per-page dirty stamp: the address space's write epoch at the page's
    /// last store, `0` when the page is clean since the last
    /// `clear_soft_dirty`.
    dirty_epoch: Vec<u64>,
    /// Per-page post-copy protection stamp: `true` while the page's content
    /// has not been transferred yet and any store must trap.
    protected: Vec<bool>,
    /// Total number of write syscalls/stores into the region (instrumentation
    /// statistics, not part of the paper's kernel interface).
    write_count: u64,
}

impl MemoryRegion {
    fn new(
        base: Addr,
        size: u64,
        kind: RegionKind,
        name: impl Into<String>,
        writable: bool,
        epoch: u64,
    ) -> Self {
        let pages = size.div_ceil(PAGE_SIZE) as usize;
        MemoryRegion {
            base,
            size,
            kind,
            name: name.into(),
            writable,
            data: vec![0; size as usize],
            // Freshly mapped pages are dirty: they were just created.
            dirty_epoch: vec![epoch; pages],
            protected: vec![false; pages],
            write_count: 0,
        }
    }

    /// Base address of the region.
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Size of the region in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// End address (exclusive).
    pub fn end(&self) -> Addr {
        Addr(self.base.0 + self.size)
    }

    /// Kind of the region.
    pub fn kind(&self) -> RegionKind {
        self.kind
    }

    /// Human-readable name (e.g. `"heap"`, `"lib:libssl"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether writes are permitted.
    pub fn is_writable(&self) -> bool {
        self.writable
    }

    /// Whether the address lies inside the region.
    pub fn contains(&self, addr: Addr) -> bool {
        addr.0 >= self.base.0 && addr.0 < self.base.0 + self.size
    }

    /// Number of pages spanned by the region.
    pub fn page_count(&self) -> usize {
        self.dirty_epoch.len()
    }

    /// Whether the page containing `addr` is soft-dirty (written since the
    /// last `clear_soft_dirty`).
    pub fn page_is_dirty(&self, addr: Addr) -> bool {
        self.page_dirty_epoch(addr) != 0
    }

    /// The dirty stamp of the page containing `addr` (`0` when clean).
    pub fn page_dirty_epoch(&self, addr: Addr) -> u64 {
        let idx = ((addr.0 - self.base.0) / PAGE_SIZE) as usize;
        self.dirty_epoch.get(idx).copied().unwrap_or(0)
    }

    /// Number of dirty pages in the region.
    pub fn dirty_page_count(&self) -> usize {
        self.dirty_page_count_since(0)
    }

    /// Number of pages whose dirty stamp exceeds `since`.
    pub fn dirty_page_count_since(&self, since: u64) -> usize {
        self.dirty_epoch.iter().filter(|&&e| e > since).count()
    }

    /// Total stores observed in this region.
    pub fn write_count(&self) -> u64 {
        self.write_count
    }

    /// Whether the page containing `addr` is post-copy protected.
    pub fn page_is_protected(&self, addr: Addr) -> bool {
        let idx = ((addr.0 - self.base.0) / PAGE_SIZE) as usize;
        self.protected.get(idx).copied().unwrap_or(false)
    }

    /// Number of protected pages in the region.
    pub fn protected_page_count(&self) -> usize {
        self.protected.iter().filter(|&&p| p).count()
    }

    fn page_span(&self, addr: Addr, len: u64) -> std::ops::RangeInclusive<usize> {
        let start = ((addr.0 - self.base.0) / PAGE_SIZE) as usize;
        let end = ((addr.0 - self.base.0 + len.max(1) - 1) / PAGE_SIZE) as usize;
        start..=end.min(self.protected.len().saturating_sub(1))
    }

    fn set_protected(&mut self, addr: Addr, len: u64, value: bool) -> isize {
        let mut delta = 0isize;
        for page in self.page_span(addr, len) {
            if self.protected[page] != value {
                delta += if value { 1 } else { -1 };
                self.protected[page] = value;
            }
        }
        delta
    }

    fn span_is_protected(&self, addr: Addr, len: u64) -> bool {
        self.page_span(addr, len).any(|page| self.protected[page])
    }

    fn mark_dirty(&mut self, addr: Addr, len: usize, epoch: u64) {
        let start = ((addr.0 - self.base.0) / PAGE_SIZE) as usize;
        let end = ((addr.0 - self.base.0 + len.max(1) as u64 - 1) / PAGE_SIZE) as usize;
        for page in start..=end.min(self.dirty_epoch.len().saturating_sub(1)) {
            self.dirty_epoch[page] = epoch;
        }
    }

    fn clear_soft_dirty(&mut self) {
        for stamp in &mut self.dirty_epoch {
            *stamp = 0;
        }
    }
}

/// A report of the dirty pages of one region, as collected at update time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirtyRange {
    /// Base address of the dirty page run.
    pub base: Addr,
    /// Length of the run in bytes.
    pub len: u64,
    /// Kind of the containing region.
    pub kind: RegionKind,
}

/// A store that hit a post-copy protected page and is parked until the
/// fault handler transfers the page's content and replays it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingTrap {
    /// Destination address of the parked store.
    pub addr: Addr,
    /// The bytes the store would have written.
    pub bytes: Vec<u8>,
}

/// A full simulated virtual address space.
#[derive(Debug, Clone)]
pub struct AddressSpace {
    regions: BTreeMap<u64, MemoryRegion>,
    /// The stamp given to pages written from now on; bumped once per
    /// pre-copy round by [`AddressSpace::advance_write_epoch`].
    write_epoch: u64,
    /// Total protected pages across all regions (fast-path guard so the
    /// store barrier costs nothing while post-copy is not in progress).
    protected_pages: usize,
    /// Stores parked by the access-trap barrier, in program order.
    pending_traps: Vec<PendingTrap>,
    /// Total stores ever parked (instrumentation).
    traps_taken: u64,
}

impl Default for AddressSpace {
    fn default() -> Self {
        AddressSpace {
            regions: BTreeMap::new(),
            write_epoch: 1,
            protected_pages: 0,
            pending_traps: Vec::new(),
            traps_taken: 0,
        }
    }
}

impl AddressSpace {
    /// Creates an empty address space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Maps a new region at `base`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MappingOverlap`] if the range overlaps an existing
    /// region and [`SimError::InvalidArgument`] for a zero-sized mapping.
    pub fn map_region(
        &mut self,
        base: Addr,
        size: u64,
        kind: RegionKind,
        name: impl Into<String>,
    ) -> SimResult<()> {
        self.map_region_with_perms(base, size, kind, name, true)
    }

    /// Maps a new region with explicit writability.
    pub fn map_region_with_perms(
        &mut self,
        base: Addr,
        size: u64,
        kind: RegionKind,
        name: impl Into<String>,
        writable: bool,
    ) -> SimResult<()> {
        if size == 0 {
            return Err(SimError::InvalidArgument("zero-sized mapping".into()));
        }
        if self.overlaps(base, size) {
            return Err(SimError::MappingOverlap { base, size });
        }
        self.regions.insert(base.0, MemoryRegion::new(base, size, kind, name, writable, self.write_epoch));
        Ok(())
    }

    /// Unmaps the region starting exactly at `base`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnmappedAddress`] if no region starts at `base`.
    pub fn unmap_region(&mut self, base: Addr) -> SimResult<MemoryRegion> {
        self.regions.remove(&base.0).ok_or(SimError::UnmappedAddress(base))
    }

    fn overlaps(&self, base: Addr, size: u64) -> bool {
        let end = base.0 + size;
        self.regions.values().any(|r| base.0 < r.end().0 && r.base().0 < end)
    }

    /// Finds the region containing `addr`.
    pub fn region_containing(&self, addr: Addr) -> Option<&MemoryRegion> {
        self.regions.range(..=addr.0).next_back().map(|(_, r)| r).filter(|r| r.contains(addr))
    }

    fn region_containing_mut(&mut self, addr: Addr) -> Option<&mut MemoryRegion> {
        self.regions.range_mut(..=addr.0).next_back().map(|(_, r)| r).filter(|r| r.contains(addr))
    }

    /// Iterates over all mapped regions in address order.
    pub fn regions(&self) -> impl Iterator<Item = &MemoryRegion> {
        self.regions.values()
    }

    /// Returns the region of the given kind with the given name, if any.
    pub fn find_region(&self, kind: RegionKind, name: &str) -> Option<&MemoryRegion> {
        self.regions.values().find(|r| r.kind() == kind && r.name() == name)
    }

    /// Total mapped bytes (a proxy for the resident set size of the process).
    pub fn mapped_bytes(&self) -> u64 {
        self.regions.values().map(|r| r.size()).sum()
    }

    /// True if an address is mapped.
    pub fn is_mapped(&self, addr: Addr) -> bool {
        self.region_containing(addr).is_some()
    }

    /// True if `addr` is mapped and points at least `len` bytes inside a
    /// single region (the validity test used by conservative pointer
    /// scanning).
    pub fn is_valid_range(&self, addr: Addr, len: usize) -> bool {
        match self.region_containing(addr) {
            Some(r) => addr.0 + len as u64 <= r.end().0,
            None => false,
        }
    }

    // ------------------------------------------------------------------
    // Raw byte accessors
    // ------------------------------------------------------------------

    /// Reads `len` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// Fails if the range is unmapped or crosses the end of its region.
    pub fn read_bytes(&self, addr: Addr, len: usize) -> SimResult<Vec<u8>> {
        let region = self.region_containing(addr).ok_or(SimError::UnmappedAddress(addr))?;
        let off = (addr.0 - region.base().0) as usize;
        if off + len > region.data.len() {
            return Err(SimError::OutOfBounds { addr, len });
        }
        Ok(region.data[off..off + len].to_vec())
    }

    /// Reads `buf.len()` bytes starting at `addr` into a caller-provided
    /// buffer — the allocation-free sibling of [`AddressSpace::read_bytes`].
    /// The transfer engine's snapshot pass uses this with a reusable
    /// per-worker scratch buffer so tracing a big heap does not allocate one
    /// `Vec` per object.
    ///
    /// # Errors
    ///
    /// Fails if the range is unmapped or crosses the end of its region.
    pub fn read_into(&self, addr: Addr, buf: &mut [u8]) -> SimResult<()> {
        let region = self.region_containing(addr).ok_or(SimError::UnmappedAddress(addr))?;
        let off = (addr.0 - region.base().0) as usize;
        if off + buf.len() > region.data.len() {
            return Err(SimError::OutOfBounds { addr, len: buf.len() });
        }
        buf.copy_from_slice(&region.data[off..off + buf.len()]);
        Ok(())
    }

    /// Copies `len` bytes from `src` (at `src_addr`) directly into this
    /// address space at `dst`: one region-to-region `memcpy` that stamps
    /// write-epochs once per touched page instead of routing every object
    /// through an intermediate `Vec`. This is the range-copy fast path the
    /// transfer engine uses for verbatim (untyped / non-updatable) objects.
    ///
    /// Like [`AddressSpace::write_bytes_through`], this is a transfer-engine
    /// store path and bypasses post-copy access traps.
    ///
    /// # Errors
    ///
    /// Fails if the source range is unmapped or out of bounds, or if the
    /// destination range is unmapped, read-only, or out of bounds.
    pub fn copy_range(&mut self, dst: Addr, src: &AddressSpace, src_addr: Addr, len: usize) -> SimResult<()> {
        let src_region = src.region_containing(src_addr).ok_or(SimError::UnmappedAddress(src_addr))?;
        let src_off = (src_addr.0 - src_region.base().0) as usize;
        if src_off + len > src_region.data.len() {
            return Err(SimError::OutOfBounds { addr: src_addr, len });
        }
        let epoch = self.write_epoch;
        let region = self.region_containing_mut(dst).ok_or(SimError::UnmappedAddress(dst))?;
        if !region.is_writable() {
            return Err(SimError::ReadOnlyRegion(dst));
        }
        let off = (dst.0 - region.base().0) as usize;
        if off + len > region.data.len() {
            return Err(SimError::OutOfBounds { addr: dst, len });
        }
        region.data[off..off + len].copy_from_slice(&src_region.data[src_off..src_off + len]);
        region.mark_dirty(dst, len, epoch);
        region.write_count += 1;
        Ok(())
    }

    /// Writes `bytes` starting at `addr`, marking touched pages soft-dirty.
    ///
    /// If any touched page is post-copy protected, the store does not land:
    /// it is parked as a [`PendingTrap`] (the simulated thread "faults" on
    /// the missing page) and `Ok` is returned. The fault handler retrieves
    /// parked stores with [`AddressSpace::take_pending_traps`], transfers
    /// the page content, unprotects, and replays them.
    ///
    /// # Errors
    ///
    /// Fails if the range is unmapped, read-only, or out of bounds.
    pub fn write_bytes(&mut self, addr: Addr, bytes: &[u8]) -> SimResult<()> {
        if self.protected_pages > 0 {
            let region = self.region_containing(addr).ok_or(SimError::UnmappedAddress(addr))?;
            if !region.is_writable() {
                return Err(SimError::ReadOnlyRegion(addr));
            }
            let off = (addr.0 - region.base().0) as usize;
            if off + bytes.len() > region.data.len() {
                return Err(SimError::OutOfBounds { addr, len: bytes.len() });
            }
            if region.span_is_protected(addr, bytes.len().max(1) as u64) {
                self.pending_traps.push(PendingTrap { addr, bytes: bytes.to_vec() });
                self.traps_taken += 1;
                return Ok(());
            }
        }
        self.write_bytes_through(addr, bytes)
    }

    /// Writes `bytes` starting at `addr`, bypassing the post-copy access
    /// traps — the store path of the fault handler itself, which must land
    /// quiesce-time content on still-protected pages before replaying the
    /// parked program stores.
    ///
    /// # Errors
    ///
    /// Fails if the range is unmapped, read-only, or out of bounds.
    pub fn write_bytes_through(&mut self, addr: Addr, bytes: &[u8]) -> SimResult<()> {
        let epoch = self.write_epoch;
        let region = self.region_containing_mut(addr).ok_or(SimError::UnmappedAddress(addr))?;
        if !region.is_writable() {
            return Err(SimError::ReadOnlyRegion(addr));
        }
        let off = (addr.0 - region.base().0) as usize;
        if off + bytes.len() > region.data.len() {
            return Err(SimError::OutOfBounds { addr, len: bytes.len() });
        }
        region.data[off..off + bytes.len()].copy_from_slice(bytes);
        region.mark_dirty(addr, bytes.len(), epoch);
        region.write_count += 1;
        Ok(())
    }

    /// Fills `len` bytes at `addr` with `value`.
    pub fn fill(&mut self, addr: Addr, len: usize, value: u8) -> SimResult<()> {
        self.write_bytes(addr, &vec![value; len])
    }

    // ------------------------------------------------------------------
    // Word accessors (little-endian, as on x86)
    // ------------------------------------------------------------------

    /// Reads a 64-bit little-endian word (also used for pointers).
    pub fn read_u64(&self, addr: Addr) -> SimResult<u64> {
        let b = self.read_bytes(addr, 8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Writes a 64-bit little-endian word.
    pub fn write_u64(&mut self, addr: Addr, value: u64) -> SimResult<()> {
        self.write_bytes(addr, &value.to_le_bytes())
    }

    /// Reads a pointer-sized value as an address.
    pub fn read_ptr(&self, addr: Addr) -> SimResult<Addr> {
        Ok(Addr(self.read_u64(addr)?))
    }

    /// Writes an address as a pointer-sized value.
    pub fn write_ptr(&mut self, addr: Addr, value: Addr) -> SimResult<()> {
        self.write_u64(addr, value.0)
    }

    /// Reads a 32-bit little-endian word.
    pub fn read_u32(&self, addr: Addr) -> SimResult<u32> {
        let b = self.read_bytes(addr, 4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Writes a 32-bit little-endian word.
    pub fn write_u32(&mut self, addr: Addr, value: u32) -> SimResult<()> {
        self.write_bytes(addr, &value.to_le_bytes())
    }

    /// Reads a single byte.
    pub fn read_u8(&self, addr: Addr) -> SimResult<u8> {
        Ok(self.read_bytes(addr, 1)?[0])
    }

    /// Writes a single byte.
    pub fn write_u8(&mut self, addr: Addr, value: u8) -> SimResult<()> {
        self.write_bytes(addr, &[value])
    }

    /// Reads a NUL-terminated C string of at most `max` bytes.
    pub fn read_cstring(&self, addr: Addr, max: usize) -> SimResult<String> {
        let mut out = Vec::new();
        for i in 0..max {
            let b = self.read_u8(addr.offset(i as u64))?;
            if b == 0 {
                break;
            }
            out.push(b);
        }
        Ok(String::from_utf8_lossy(&out).into_owned())
    }

    /// Writes a NUL-terminated C string.
    pub fn write_cstring(&mut self, addr: Addr, s: &str) -> SimResult<()> {
        let mut bytes = s.as_bytes().to_vec();
        bytes.push(0);
        self.write_bytes(addr, &bytes)
    }

    // ------------------------------------------------------------------
    // Soft-dirty tracking (the /proc/pid/pagemap analogue) and the
    // epoch-based pre-copy write barrier built on top of it
    // ------------------------------------------------------------------

    /// Clears every soft-dirty stamp in the address space.
    ///
    /// MCR invokes this once at the end of program startup, so that only
    /// pages written afterwards are reported dirty at update time.
    pub fn clear_soft_dirty(&mut self) {
        for region in self.regions.values_mut() {
            region.clear_soft_dirty();
        }
    }

    /// The current write epoch (the stamp pages written from now on get).
    pub fn write_epoch(&self) -> u64 {
        self.write_epoch
    }

    /// Forces the space's write epoch (checkpoint restore: the restored
    /// space must resume counting where the checkpointed one left off).
    pub fn set_write_epoch(&mut self, epoch: u64) {
        self.write_epoch = epoch.max(1);
    }

    /// Rewrites the per-page dirty stamps of the region starting at `base`:
    /// every stamp is cleared, then the given `(page_index, epoch)` pairs
    /// are applied. Checkpoint restore uses this to reproduce the exact
    /// soft-dirty state after its reconcile writes transiently stamped
    /// pages the checkpointed instance never dirtied.
    pub fn restore_page_epochs(&mut self, base: Addr, stamps: &[(u32, u64)]) -> SimResult<()> {
        let region = self.regions.get_mut(&base.0).ok_or(SimError::UnmappedAddress(base))?;
        for e in region.dirty_epoch.iter_mut() {
            *e = 0;
        }
        for &(idx, epoch) in stamps {
            let slot = region.dirty_epoch.get_mut(idx as usize).ok_or_else(|| {
                SimError::InvalidArgument(format!("page index {idx} outside region at {base:?}"))
            })?;
            *slot = epoch;
        }
        Ok(())
    }

    /// Starts a new write epoch and returns the previous one — the highest
    /// stamp any already-written page can carry. A pre-copy round calls this
    /// before copying, so the *next* round can ask for exactly the pages
    /// written in between via [`AddressSpace::drain_dirty_since`].
    pub fn advance_write_epoch(&mut self) -> u64 {
        let prev = self.write_epoch;
        self.write_epoch += 1;
        prev
    }

    /// Collects all dirty page runs, coalescing adjacent dirty pages.
    pub fn dirty_ranges(&self) -> Vec<DirtyRange> {
        self.drain_dirty_since(0)
    }

    /// Collects the page runs whose dirty stamp exceeds `since`, coalescing
    /// adjacent matching pages. `since == 0` reports everything written
    /// since the last [`AddressSpace::clear_soft_dirty`]; a pre-copy round
    /// passes the epoch returned by its previous
    /// [`AddressSpace::advance_write_epoch`] to see only the delta.
    pub fn drain_dirty_since(&self, since: u64) -> Vec<DirtyRange> {
        let mut out = Vec::new();
        for region in self.regions.values() {
            let mut run_start: Option<u64> = None;
            for page in 0..region.page_count() as u64 {
                let dirty = region.dirty_epoch[page as usize] > since;
                match (dirty, run_start) {
                    (true, None) => run_start = Some(page),
                    (false, Some(start)) => {
                        out.push(DirtyRange {
                            base: region.base().offset(start * PAGE_SIZE),
                            len: (page - start) * PAGE_SIZE,
                            kind: region.kind(),
                        });
                        run_start = None;
                    }
                    _ => {}
                }
            }
            if let Some(start) = run_start {
                out.push(DirtyRange {
                    base: region.base().offset(start * PAGE_SIZE),
                    len: (region.page_count() as u64 - start) * PAGE_SIZE,
                    kind: region.kind(),
                });
            }
        }
        out
    }

    /// Whether the page containing `addr` is soft-dirty.
    pub fn is_dirty(&self, addr: Addr) -> bool {
        self.region_containing(addr).map(|r| r.page_is_dirty(addr)).unwrap_or(false)
    }

    /// The highest dirty stamp of the pages covering `[base, base + len)`
    /// (`0` when every covering page is clean). This is the per-object dirty
    /// epoch mutable tracing records on each traced object.
    pub fn range_dirty_epoch(&self, base: Addr, len: u64) -> u64 {
        let mut epoch = 0u64;
        let mut page = base.page_base();
        let end = base.0 + len.max(1);
        while page.0 < end {
            if let Some(r) = self.region_containing(page) {
                epoch = epoch.max(r.page_dirty_epoch(page));
            }
            page = page.offset(PAGE_SIZE);
        }
        epoch
    }

    /// Total number of dirty pages across all regions.
    pub fn dirty_page_count(&self) -> usize {
        self.regions.values().map(|r| r.dirty_page_count()).sum()
    }

    /// Number of pages (across all regions) whose dirty stamp exceeds
    /// `since` — the pre-copy convergence measure.
    pub fn dirty_page_count_since(&self, since: u64) -> usize {
        self.regions.values().map(|r| r.dirty_page_count_since(since)).sum()
    }

    /// Total number of mapped pages across all regions.
    pub fn total_page_count(&self) -> usize {
        self.regions.values().map(|r| r.page_count()).sum()
    }

    // ------------------------------------------------------------------
    // Post-copy access traps (the userfaultfd analogue)
    // ------------------------------------------------------------------

    /// Arms post-copy protection over the pages covering `[base, base+len)`:
    /// until [`AddressSpace::unprotect_range`] removes it, any
    /// [`AddressSpace::write_bytes`] store touching these pages is parked as
    /// a [`PendingTrap`] instead of landing.
    ///
    /// # Errors
    ///
    /// Fails if the range is unmapped or crosses the end of its region.
    pub fn protect_range(&mut self, base: Addr, len: u64) -> SimResult<()> {
        self.set_protection(base, len, true)
    }

    /// Removes post-copy protection from the pages covering
    /// `[base, base+len)` — called by the fault handler once the pages'
    /// content has been transferred.
    ///
    /// # Errors
    ///
    /// Fails if the range is unmapped or crosses the end of its region.
    pub fn unprotect_range(&mut self, base: Addr, len: u64) -> SimResult<()> {
        self.set_protection(base, len, false)
    }

    fn set_protection(&mut self, base: Addr, len: u64, value: bool) -> SimResult<()> {
        let region = self
            .regions
            .range_mut(..=base.0)
            .next_back()
            .map(|(_, r)| r)
            .filter(|r| r.contains(base))
            .ok_or(SimError::UnmappedAddress(base))?;
        if base.0 + len > region.end().0 {
            return Err(SimError::OutOfBounds { addr: base, len: len as usize });
        }
        let delta = region.set_protected(base, len, value);
        self.protected_pages = (self.protected_pages as isize + delta) as usize;
        Ok(())
    }

    /// Drops every protection stamp in the address space (post-copy drain
    /// finished, or the update rolled back).
    pub fn clear_protection(&mut self) {
        for region in self.regions.values_mut() {
            for page in &mut region.protected {
                *page = false;
            }
        }
        self.protected_pages = 0;
    }

    /// Whether the page containing `addr` is post-copy protected.
    pub fn is_protected(&self, addr: Addr) -> bool {
        self.protected_pages > 0
            && self.region_containing(addr).map(|r| r.page_is_protected(addr)).unwrap_or(false)
    }

    /// The base address of the first protected page covering
    /// `[addr, addr+len)`, if any — the read-barrier query for callers that
    /// need to check a load against the trap state.
    pub fn access_trap(&self, addr: Addr, len: u64) -> Option<Addr> {
        if self.protected_pages == 0 {
            return None;
        }
        let mut page = addr.page_base();
        let end = addr.0 + len.max(1);
        while page.0 < end {
            if let Some(r) = self.region_containing(page) {
                if r.page_is_protected(page) {
                    return Some(page);
                }
            }
            page = page.offset(PAGE_SIZE);
        }
        None
    }

    /// Total number of protected pages across all regions.
    pub fn protected_page_count(&self) -> usize {
        self.protected_pages
    }

    /// Number of parked stores awaiting fault-in service.
    pub fn pending_trap_count(&self) -> usize {
        self.pending_traps.len()
    }

    /// Takes the parked stores, in program order, leaving the buffer empty.
    /// The fault handler transfers the touched objects, unprotects their
    /// pages, and replays these stores in order.
    pub fn take_pending_traps(&mut self) -> Vec<PendingTrap> {
        std::mem::take(&mut self.pending_traps)
    }

    /// Total number of stores ever parked by the trap barrier.
    pub fn traps_taken(&self) -> u64 {
        self.traps_taken
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space_with_region() -> AddressSpace {
        let mut space = AddressSpace::new();
        space.map_region(Addr(0x10000), 8 * PAGE_SIZE, RegionKind::Heap, "heap").unwrap();
        space
    }

    #[test]
    fn map_and_query_region() {
        let space = space_with_region();
        let r = space.region_containing(Addr(0x10000 + 100)).unwrap();
        assert_eq!(r.base(), Addr(0x10000));
        assert_eq!(r.kind(), RegionKind::Heap);
        assert!(space.is_mapped(Addr(0x10000)));
        assert!(!space.is_mapped(Addr(0x10000 + 8 * PAGE_SIZE)));
        assert_eq!(space.mapped_bytes(), 8 * PAGE_SIZE);
    }

    #[test]
    fn overlapping_map_rejected() {
        let mut space = space_with_region();
        let err = space.map_region(Addr(0x10000 + PAGE_SIZE), PAGE_SIZE, RegionKind::Mmap, "x").unwrap_err();
        assert!(matches!(err, SimError::MappingOverlap { .. }));
        // Adjacent (non-overlapping) map is fine.
        space.map_region(Addr(0x10000 + 8 * PAGE_SIZE), PAGE_SIZE, RegionKind::Mmap, "y").unwrap();
    }

    #[test]
    fn zero_sized_map_rejected() {
        let mut space = AddressSpace::new();
        assert!(space.map_region(Addr(0x1000), 0, RegionKind::Mmap, "z").is_err());
    }

    #[test]
    fn read_write_words() {
        let mut space = space_with_region();
        space.write_u64(Addr(0x10008), 0xdead_beef_cafe_f00d).unwrap();
        assert_eq!(space.read_u64(Addr(0x10008)).unwrap(), 0xdead_beef_cafe_f00d);
        space.write_u32(Addr(0x10020), 77).unwrap();
        assert_eq!(space.read_u32(Addr(0x10020)).unwrap(), 77);
        space.write_u8(Addr(0x10030), 9).unwrap();
        assert_eq!(space.read_u8(Addr(0x10030)).unwrap(), 9);
    }

    #[test]
    fn cstring_roundtrip() {
        let mut space = space_with_region();
        space.write_cstring(Addr(0x10100), "hello mcr").unwrap();
        assert_eq!(space.read_cstring(Addr(0x10100), 64).unwrap(), "hello mcr");
    }

    #[test]
    fn unmapped_and_out_of_bounds_access() {
        let mut space = space_with_region();
        assert!(matches!(space.read_u64(Addr(0x1)).unwrap_err(), SimError::UnmappedAddress(_)));
        let end = Addr(0x10000 + 8 * PAGE_SIZE - 4);
        assert!(matches!(space.write_u64(end, 1).unwrap_err(), SimError::OutOfBounds { .. }));
    }

    #[test]
    fn read_only_region_rejects_writes() {
        let mut space = AddressSpace::new();
        space.map_region_with_perms(Addr(0x5000), PAGE_SIZE, RegionKind::Lib, "ro", false).unwrap();
        assert!(matches!(space.write_u8(Addr(0x5000), 1).unwrap_err(), SimError::ReadOnlyRegion(_)));
        assert_eq!(space.read_u8(Addr(0x5000)).unwrap(), 0);
    }

    #[test]
    fn soft_dirty_lifecycle() {
        let mut space = space_with_region();
        // Freshly mapped pages are dirty (they were just created).
        assert_eq!(space.dirty_page_count(), 8);
        space.clear_soft_dirty();
        assert_eq!(space.dirty_page_count(), 0);
        // A single write dirties exactly the touched page(s).
        space.write_u64(Addr(0x10000 + PAGE_SIZE + 8), 1).unwrap();
        assert_eq!(space.dirty_page_count(), 1);
        assert!(space.is_dirty(Addr(0x10000 + PAGE_SIZE)));
        assert!(!space.is_dirty(Addr(0x10000)));
        // A write spanning a page boundary dirties both pages.
        space.write_bytes(Addr(0x10000 + 3 * PAGE_SIZE - 4), &[1u8; 8]).unwrap();
        assert!(space.is_dirty(Addr(0x10000 + 2 * PAGE_SIZE)));
        assert!(space.is_dirty(Addr(0x10000 + 3 * PAGE_SIZE)));
    }

    #[test]
    fn dirty_ranges_coalesce() {
        let mut space = space_with_region();
        space.clear_soft_dirty();
        space.write_u8(Addr(0x10000), 1).unwrap();
        space.write_u8(Addr(0x10000 + PAGE_SIZE), 1).unwrap();
        space.write_u8(Addr(0x10000 + 4 * PAGE_SIZE), 1).unwrap();
        let ranges = space.dirty_ranges();
        assert_eq!(ranges.len(), 2);
        assert_eq!(ranges[0].base, Addr(0x10000));
        assert_eq!(ranges[0].len, 2 * PAGE_SIZE);
        assert_eq!(ranges[1].base, Addr(0x10000 + 4 * PAGE_SIZE));
        assert_eq!(ranges[1].len, PAGE_SIZE);
    }

    #[test]
    fn write_epochs_expose_per_round_deltas() {
        let mut space = space_with_region();
        space.clear_soft_dirty();
        // Round 0 writes carry the initial epoch.
        space.write_u64(Addr(0x10000), 1).unwrap();
        let e0 = space.advance_write_epoch();
        assert_eq!(space.write_epoch(), e0 + 1);
        // Nothing written after the bump yet.
        assert!(space.drain_dirty_since(e0).is_empty());
        assert_eq!(space.dirty_page_count_since(e0), 0);
        // A new write lands in the new epoch and only it shows up in the
        // delta; the full dirty set still contains both pages.
        space.write_u64(Addr(0x10000 + 2 * PAGE_SIZE), 2).unwrap();
        let delta = space.drain_dirty_since(e0);
        assert_eq!(delta.len(), 1);
        assert_eq!(delta[0].base, Addr(0x10000 + 2 * PAGE_SIZE));
        assert_eq!(space.dirty_page_count(), 2);
        assert_eq!(space.range_dirty_epoch(Addr(0x10000), 8), e0);
        assert_eq!(space.range_dirty_epoch(Addr(0x10000 + 2 * PAGE_SIZE), 8), e0 + 1);
        assert_eq!(space.range_dirty_epoch(Addr(0x10000 + PAGE_SIZE), 8), 0);
        // Re-writing an old page moves it into the current epoch.
        let e1 = space.advance_write_epoch();
        space.write_u64(Addr(0x10000), 3).unwrap();
        assert_eq!(space.dirty_page_count_since(e1), 1);
        // clear_soft_dirty resets stamps but not the epoch counter.
        space.clear_soft_dirty();
        assert_eq!(space.dirty_page_count(), 0);
        assert_eq!(space.write_epoch(), e1 + 1);
    }

    #[test]
    fn access_traps_park_and_replay_stores() {
        let mut space = space_with_region();
        space.clear_soft_dirty();
        space.write_u64(Addr(0x10000), 0x1111).unwrap();
        // Arm protection over the second page.
        space.protect_range(Addr(0x10000 + PAGE_SIZE), PAGE_SIZE).unwrap();
        assert_eq!(space.protected_page_count(), 1);
        assert!(space.is_protected(Addr(0x10000 + PAGE_SIZE + 8)));
        assert!(!space.is_protected(Addr(0x10000)));
        assert_eq!(space.access_trap(Addr(0x10000), 2 * PAGE_SIZE), Some(Addr(0x10000 + PAGE_SIZE)));
        assert_eq!(space.access_trap(Addr(0x10000), 8), None);
        // A store to an unprotected page lands as usual.
        space.write_u64(Addr(0x10008), 0x2222).unwrap();
        assert_eq!(space.read_u64(Addr(0x10008)).unwrap(), 0x2222);
        // A store to the protected page parks instead of landing.
        space.write_u64(Addr(0x10000 + PAGE_SIZE), 0x3333).unwrap();
        assert_eq!(space.read_u64(Addr(0x10000 + PAGE_SIZE)).unwrap(), 0);
        assert_eq!(space.pending_trap_count(), 1);
        assert_eq!(space.traps_taken(), 1);
        // The fault handler lands content through the barrier, unprotects,
        // and replays the parked store — final bytes as if transfer had
        // happened before the program store.
        space.write_bytes_through(Addr(0x10000 + PAGE_SIZE), &[9u8; 16]).unwrap();
        space.unprotect_range(Addr(0x10000 + PAGE_SIZE), PAGE_SIZE).unwrap();
        assert_eq!(space.protected_page_count(), 0);
        for trap in space.take_pending_traps() {
            space.write_bytes(trap.addr, &trap.bytes).unwrap();
        }
        assert_eq!(space.pending_trap_count(), 0);
        assert_eq!(space.read_u64(Addr(0x10000 + PAGE_SIZE)).unwrap(), 0x3333);
        assert_eq!(space.read_u64(Addr(0x10000 + PAGE_SIZE + 8)).unwrap(), 0x0909_0909_0909_0909);
        // Error paths and idempotent re-protection.
        assert!(space.protect_range(Addr(0x1), 8).is_err());
        space.protect_range(Addr(0x10000), PAGE_SIZE).unwrap();
        space.protect_range(Addr(0x10000), PAGE_SIZE).unwrap();
        assert_eq!(space.protected_page_count(), 1);
        space.clear_protection();
        assert_eq!(space.protected_page_count(), 0);
    }

    #[test]
    fn read_into_matches_read_bytes() {
        let mut space = space_with_region();
        space.write_bytes(Addr(0x10010), &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        let mut buf = [0u8; 8];
        space.read_into(Addr(0x10010), &mut buf).unwrap();
        assert_eq!(buf.to_vec(), space.read_bytes(Addr(0x10010), 8).unwrap());
        // Errors mirror read_bytes.
        assert!(space.read_into(Addr(0x1), &mut buf).is_err());
        let end = Addr(0x10000 + 8 * PAGE_SIZE - 4);
        assert!(space.read_into(end, &mut buf).is_err());
    }

    #[test]
    fn copy_range_copies_and_stamps_pages() {
        let mut src = space_with_region();
        src.write_bytes(Addr(0x10000), &[9u8; 64]).unwrap();
        let mut dst = AddressSpace::new();
        dst.map_region(Addr(0x40000), 4 * PAGE_SIZE, RegionKind::Heap, "dst").unwrap();
        dst.clear_soft_dirty();
        dst.copy_range(Addr(0x40008), &src, Addr(0x10000), 64).unwrap();
        assert_eq!(dst.read_bytes(Addr(0x40008), 64).unwrap(), vec![9u8; 64]);
        assert!(dst.is_dirty(Addr(0x40008)), "copy stamps the touched page");
        assert_eq!(dst.dirty_page_count(), 1);
        // A copy spanning a page boundary stamps both pages.
        dst.copy_range(Addr(0x40000 + PAGE_SIZE - 4), &src, Addr(0x10000), 8).unwrap();
        assert!(dst.is_dirty(Addr(0x40000)) && dst.is_dirty(Addr(0x40000 + PAGE_SIZE)));
        // Error paths: unmapped source, unmapped destination, read-only
        // destination.
        assert!(dst.copy_range(Addr(0x40000), &src, Addr(0x1), 8).is_err());
        assert!(dst.copy_range(Addr(0x1), &src, Addr(0x10000), 8).is_err());
        let mut ro = AddressSpace::new();
        ro.map_region_with_perms(Addr(0x5000), PAGE_SIZE, RegionKind::Lib, "ro", false).unwrap();
        assert!(ro.copy_range(Addr(0x5000), &src, Addr(0x10000), 8).is_err());
    }

    #[test]
    fn unmap_region_works() {
        let mut space = space_with_region();
        space.unmap_region(Addr(0x10000)).unwrap();
        assert!(!space.is_mapped(Addr(0x10000)));
        assert!(space.unmap_region(Addr(0x10000)).is_err());
    }

    #[test]
    fn valid_range_checks() {
        let space = space_with_region();
        assert!(space.is_valid_range(Addr(0x10000), 8));
        assert!(space.is_valid_range(Addr(0x10000 + 8 * PAGE_SIZE - 8), 8));
        assert!(!space.is_valid_range(Addr(0x10000 + 8 * PAGE_SIZE - 4), 8));
        assert!(!space.is_valid_range(Addr(0x1), 1));
    }

    #[test]
    fn addr_helpers() {
        assert_eq!(Addr(0x1234).page_base(), Addr(0x1000));
        assert!(Addr(0x1000).is_aligned(8));
        assert!(!Addr(0x1001).is_aligned(8));
        assert!(Addr::NULL.is_null());
        assert_eq!(Addr(4).offset(4), Addr(8));
    }
}
