//! Simulated processes and threads.
//!
//! A [`Process`] owns an address space, the allocators managing its heap, a
//! descriptor table and a set of threads. Threads carry an explicit call
//! stack of function names: MCR's call-stack IDs (used to match replayed
//! syscalls and to pair processes/threads across versions) are computed from
//! exactly this information.

use std::collections::BTreeMap;

use crate::alloc::{PtMalloc, RegionAllocator};
use crate::error::{SimError, SimResult};
use crate::fd::FdTable;
use crate::ids::{Pid, Tid};
use crate::memory::{Addr, AddressSpace, RegionKind};

/// Scheduling/blocking state of a simulated thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ThreadState {
    /// Runnable / currently executing.
    Running,
    /// Blocked inside a (possibly unblockified) library call.
    Blocked {
        /// Name of the blocking library call (e.g. `"accept"`, `"epoll_wait"`).
        call: String,
    },
    /// Parked at a quiescent point by MCR's barrier protocol.
    Quiesced,
    /// The thread has exited.
    Exited,
}

/// A simulated thread.
#[derive(Debug, Clone)]
pub struct Thread {
    tid: Tid,
    name: String,
    state: ThreadState,
    call_stack: Vec<String>,
    /// Call stack captured at thread creation time (used to match threads
    /// across program versions).
    creation_stack: Vec<String>,
    /// Simulated nanoseconds spent per blocking call (quiescence profiling).
    blocking_ns: BTreeMap<String, u64>,
    /// Iterations executed per named loop (long-lived loop detection).
    loop_iterations: BTreeMap<String, u64>,
}

impl Thread {
    fn new(tid: Tid, name: impl Into<String>, creation_stack: Vec<String>) -> Self {
        Thread {
            tid,
            name: name.into(),
            state: ThreadState::Running,
            call_stack: Vec::new(),
            creation_stack,
            blocking_ns: BTreeMap::new(),
            loop_iterations: BTreeMap::new(),
        }
    }

    /// Thread identifier.
    pub fn tid(&self) -> Tid {
        self.tid
    }

    /// Human-readable thread name (e.g. `"worker"`, `"master"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current state.
    pub fn state(&self) -> &ThreadState {
        &self.state
    }

    /// Sets the state.
    pub fn set_state(&mut self, state: ThreadState) {
        self.state = state;
    }

    /// Pushes a function frame onto the simulated call stack.
    pub fn push_frame(&mut self, function: impl Into<String>) {
        self.call_stack.push(function.into());
    }

    /// Pops the innermost frame.
    pub fn pop_frame(&mut self) {
        self.call_stack.pop();
    }

    /// The active function names, outermost first.
    pub fn call_stack(&self) -> &[String] {
        &self.call_stack
    }

    /// Replaces the whole call stack (used when restoring a checkpoint).
    pub fn set_call_stack(&mut self, frames: Vec<String>) {
        self.call_stack = frames;
    }

    /// Call stack at thread creation time.
    pub fn creation_stack(&self) -> &[String] {
        &self.creation_stack
    }

    /// Records `ns` nanoseconds spent blocked in `call` (profiler input).
    pub fn record_blocking(&mut self, call: &str, ns: u64) {
        *self.blocking_ns.entry(call.to_string()).or_insert(0) += ns;
    }

    /// Records one iteration of the named loop (profiler input).
    pub fn record_loop_iteration(&mut self, loop_name: &str) {
        *self.loop_iterations.entry(loop_name.to_string()).or_insert(0) += 1;
    }

    /// Blocking-time histogram collected so far.
    pub fn blocking_profile(&self) -> &BTreeMap<String, u64> {
        &self.blocking_ns
    }

    /// Loop-iteration histogram collected so far.
    pub fn loop_profile(&self) -> &BTreeMap<String, u64> {
        &self.loop_iterations
    }

    /// True if the thread is parked at a quiescent point.
    pub fn is_quiesced(&self) -> bool {
        matches!(self.state, ThreadState::Quiesced)
    }
}

/// Standard virtual-memory layout constants for simulated programs.
///
/// Address-space layout differs between program versions by an ASLR-like
/// offset, which is what forces MCR to *relocate* mutable objects and pin
/// immutable ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryLayout {
    /// Base of the static data region.
    pub static_base: Addr,
    /// Size of the static data region.
    pub static_size: u64,
    /// Base of the heap region.
    pub heap_base: Addr,
    /// Size of the heap region.
    pub heap_size: u64,
    /// Base of the (single, shared) library data region.
    pub lib_base: Addr,
    /// Size of the library data region.
    pub lib_size: u64,
    /// Base of the stack region.
    pub stack_base: Addr,
    /// Size of the stack region.
    pub stack_size: u64,
}

impl MemoryLayout {
    /// The default layout, shifted by an ASLR-like `slide` in bytes.
    ///
    /// The library region is *not* slid: MCR prelinks copied libraries so the
    /// new version maps them at the same address as the old one (paper §5,
    /// global reallocation).
    pub fn with_slide(slide: u64) -> Self {
        MemoryLayout {
            static_base: Addr(0x0040_0000 + slide),
            static_size: 1024 * 1024,
            heap_base: Addr(0x0800_0000 + slide),
            heap_size: 16 * 1024 * 1024,
            lib_base: Addr(0x7f00_0000_0000),
            lib_size: 2 * 1024 * 1024,
            stack_base: Addr(0x7ffc_0000_0000 + slide),
            stack_size: 1024 * 1024,
        }
    }
}

impl Default for MemoryLayout {
    fn default() -> Self {
        MemoryLayout::with_slide(0)
    }
}

/// A simulated process.
#[derive(Debug, Clone)]
pub struct Process {
    pid: Pid,
    ppid: Option<Pid>,
    name: String,
    space: AddressSpace,
    heap: Option<PtMalloc>,
    regions: RegionAllocator,
    fds: FdTable,
    /// Threads sorted by ascending tid. Tids are handed out by the kernel in
    /// globally increasing order, so insertion order and tid order coincide
    /// and new threads are appended; a binary search resolves lookups.
    threads: Vec<Thread>,
    main_tid: Tid,
    layout: MemoryLayout,
    exit_code: Option<i32>,
    /// Call stack of the `fork` that created this process (empty for the
    /// initial process); used to pair processes across versions.
    creation_stack: Vec<String>,
}

impl Process {
    pub(crate) fn new(pid: Pid, ppid: Option<Pid>, name: impl Into<String>, main_tid: Tid) -> Self {
        let threads = vec![Thread::new(main_tid, "main", Vec::new())];
        Process {
            pid,
            ppid,
            name: name.into(),
            space: AddressSpace::new(),
            heap: None,
            regions: RegionAllocator::new(false),
            fds: FdTable::new(),
            threads,
            main_tid,
            layout: MemoryLayout::default(),
            exit_code: None,
            creation_stack: Vec::new(),
        }
    }

    /// Process identifier.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Parent process identifier, if any.
    pub fn ppid(&self) -> Option<Pid> {
        self.ppid
    }

    /// Program name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the process (used by `exec`).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// The memory layout used by [`Process::setup_memory`].
    pub fn layout(&self) -> MemoryLayout {
        self.layout
    }

    /// Maps the standard regions (static, heap, lib, stack) according to
    /// `layout` and installs a heap allocator.
    ///
    /// # Errors
    ///
    /// Fails if the regions cannot be mapped (e.g. called twice).
    pub fn setup_memory(&mut self, layout: MemoryLayout, instrumented_heap: bool) -> SimResult<()> {
        self.layout = layout;
        self.space.map_region(layout.static_base, layout.static_size, RegionKind::Static, "static")?;
        self.space.map_region(layout.heap_base, layout.heap_size, RegionKind::Heap, "heap")?;
        self.space.map_region(layout.lib_base, layout.lib_size, RegionKind::Lib, "lib")?;
        self.space.map_region(layout.stack_base, layout.stack_size, RegionKind::Stack, "stack")?;
        self.heap = Some(PtMalloc::new(layout.heap_base, layout.heap_size, instrumented_heap));
        Ok(())
    }

    /// Shared access to the address space.
    pub fn space(&self) -> &AddressSpace {
        &self.space
    }

    /// Exclusive access to the address space.
    pub fn space_mut(&mut self) -> &mut AddressSpace {
        &mut self.space
    }

    /// The heap allocator, if memory has been set up.
    pub fn heap(&self) -> Option<&PtMalloc> {
        self.heap.as_ref()
    }

    /// Exclusive access to the heap allocator.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidArgument`] if memory was never set up.
    pub fn heap_mut(&mut self) -> SimResult<&mut PtMalloc> {
        self.heap.as_mut().ok_or(SimError::InvalidArgument("process memory not set up".into()))
    }

    /// Simultaneous access to the address space and heap allocator (the
    /// common pattern for allocation).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidArgument`] if memory was never set up.
    pub fn space_and_heap_mut(&mut self) -> SimResult<(&mut AddressSpace, &mut PtMalloc)> {
        let heap = self.heap.as_mut().ok_or(SimError::InvalidArgument("process memory not set up".into()))?;
        Ok((&mut self.space, heap))
    }

    /// Simultaneous access to address space, heap and region allocator.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidArgument`] if memory was never set up.
    pub fn space_heap_regions_mut(
        &mut self,
    ) -> SimResult<(&mut AddressSpace, &mut PtMalloc, &mut RegionAllocator)> {
        let heap = self.heap.as_mut().ok_or(SimError::InvalidArgument("process memory not set up".into()))?;
        Ok((&mut self.space, heap, &mut self.regions))
    }

    /// The process's region/pool allocator.
    pub fn regions(&self) -> &RegionAllocator {
        &self.regions
    }

    /// Exclusive access to the region/pool allocator.
    pub fn regions_mut(&mut self) -> &mut RegionAllocator {
        &mut self.regions
    }

    /// Replaces the region allocator (used to enable instrumentation).
    pub fn set_region_allocator(&mut self, regions: RegionAllocator) {
        self.regions = regions;
    }

    /// The descriptor table.
    pub fn fds(&self) -> &FdTable {
        &self.fds
    }

    /// Exclusive access to the descriptor table.
    pub fn fds_mut(&mut self) -> &mut FdTable {
        &mut self.fds
    }

    /// The main thread's id.
    pub fn main_tid(&self) -> Tid {
        self.main_tid
    }

    /// Shared access to a thread.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoSuchThread`] for an unknown thread id.
    pub fn thread(&self, tid: Tid) -> SimResult<&Thread> {
        self.thread_pos(tid).map(|i| &self.threads[i]).ok_or(SimError::NoSuchThread(self.pid, tid))
    }

    /// Index of `tid` in the sorted thread vector, if present.
    fn thread_pos(&self, tid: Tid) -> Option<usize> {
        self.threads.binary_search_by_key(&tid.0, |t| t.tid.0).ok()
    }

    /// Exclusive access to a thread.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoSuchThread`] for an unknown thread id.
    pub fn thread_mut(&mut self, tid: Tid) -> SimResult<&mut Thread> {
        match self.thread_pos(tid) {
            Some(i) => Ok(&mut self.threads[i]),
            None => Err(SimError::NoSuchThread(self.pid, tid)),
        }
    }

    /// Iterates over the process's threads in ascending tid order.
    pub fn threads(&self) -> impl Iterator<Item = &Thread> {
        self.threads.iter()
    }

    /// Iterates mutably over the process's threads in ascending tid order.
    pub fn threads_mut(&mut self) -> impl Iterator<Item = &mut Thread> {
        self.threads.iter_mut()
    }

    /// Number of threads (including exited ones still in the table).
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    pub(crate) fn add_thread(&mut self, tid: Tid, name: impl Into<String>, creation_stack: Vec<String>) {
        let thread = Thread::new(tid, name, creation_stack);
        match self.threads.binary_search_by_key(&tid.0, |t| t.tid.0) {
            Ok(i) => self.threads[i] = thread,
            Err(i) => self.threads.insert(i, thread),
        }
    }

    /// Drops every thread except `tid` (exec-style single-thread reset).
    pub fn retain_only_thread(&mut self, tid: Tid) {
        self.threads.retain(|t| t.tid == tid);
        self.main_tid = tid;
    }

    /// Whether the process has exited.
    pub fn has_exited(&self) -> bool {
        self.exit_code.is_some()
    }

    /// Exit code if the process has exited.
    pub fn exit_code(&self) -> Option<i32> {
        self.exit_code
    }

    pub(crate) fn set_exit(&mut self, code: i32) {
        self.exit_code = Some(code);
        for t in &mut self.threads {
            t.set_state(ThreadState::Exited);
        }
    }

    /// Call stack of the fork that created this process.
    pub fn creation_stack(&self) -> &[String] {
        &self.creation_stack
    }

    /// Overrides the creation-time call stack (used by higher layers when the
    /// initial process of a program is created outside a `fork`).
    pub fn set_creation_stack(&mut self, stack: Vec<String>) {
        self.creation_stack = stack;
    }

    /// Resident set size: total mapped bytes plus allocator metadata.
    pub fn resident_bytes(&self) -> u64 {
        let meta = self.heap.as_ref().map(|h| h.stats().metadata_bytes).unwrap_or(0)
            + self.regions.stats().metadata_bytes;
        self.space.mapped_bytes() + meta
    }

    /// True if every live (non-exited) thread is parked at a quiescent point.
    pub fn is_quiescent(&self) -> bool {
        self.threads.iter().filter(|t| !matches!(t.state(), ThreadState::Exited)).all(|t| t.is_quiesced())
    }

    pub(crate) fn fork_into(&self, child_pid: Pid, child_main_tid: Tid, forking_tid: Tid) -> Process {
        let forking_stack =
            self.thread_pos(forking_tid).map(|i| self.threads[i].call_stack().to_vec()).unwrap_or_default();
        let mut main = Thread::new(child_main_tid, "main", forking_stack.clone());
        main.set_call_stack(forking_stack.clone());
        let threads = vec![main];
        Process {
            pid: child_pid,
            ppid: Some(self.pid),
            name: self.name.clone(),
            space: self.space.clone(),
            heap: self.heap.clone(),
            regions: self.regions.clone(),
            fds: self.fds.clone(),
            threads,
            main_tid: child_main_tid,
            layout: self.layout,
            exit_code: None,
            creation_stack: forking_stack,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::{AllocSite, TypeTag};

    fn proc_with_memory() -> Process {
        let mut p = Process::new(Pid(1), None, "testd", Tid(1));
        p.setup_memory(MemoryLayout::default(), true).unwrap();
        p
    }

    #[test]
    fn setup_memory_maps_standard_regions() {
        let p = proc_with_memory();
        assert_eq!(p.space().regions().count(), 4);
        assert!(p.heap().is_some());
        assert!(p.resident_bytes() > 0);
    }

    #[test]
    fn setup_memory_twice_fails() {
        let mut p = proc_with_memory();
        assert!(p.setup_memory(MemoryLayout::default(), false).is_err());
    }

    #[test]
    fn thread_call_stack_and_profiles() {
        let mut p = proc_with_memory();
        let tid = p.main_tid();
        {
            let t = p.thread_mut(tid).unwrap();
            t.push_frame("main");
            t.push_frame("server_init");
            assert_eq!(t.call_stack(), &["main".to_string(), "server_init".to_string()]);
            t.pop_frame();
            t.record_blocking("accept", 1_000);
            t.record_blocking("accept", 500);
            t.record_loop_iteration("main_loop");
        }
        let t = p.thread(tid).unwrap();
        assert_eq!(t.blocking_profile()["accept"], 1_500);
        assert_eq!(t.loop_profile()["main_loop"], 1);
        assert!(p.thread(Tid(999)).is_err());
    }

    #[test]
    fn quiescence_requires_all_threads() {
        let mut p = proc_with_memory();
        p.add_thread(Tid(2), "worker", vec!["main".into(), "spawn_workers".into()]);
        assert!(!p.is_quiescent());
        for t in p.threads_mut() {
            t.set_state(ThreadState::Quiesced);
        }
        assert!(p.is_quiescent());
    }

    #[test]
    fn fork_copies_memory_and_fds() {
        let mut p = proc_with_memory();
        let addr = {
            let (space, heap) = p.space_and_heap_mut().unwrap();
            let a = heap.malloc(space, 64, AllocSite(1), TypeTag(1)).unwrap();
            space.write_u64(a, 0x1234).unwrap();
            a
        };
        p.fds_mut().alloc(crate::ids::ObjId(9));
        {
            let t = p.thread_mut(Tid(1)).unwrap();
            t.push_frame("main");
            t.push_frame("spawn_worker");
        }
        let child = p.fork_into(Pid(2), Tid(10), Tid(1));
        assert_eq!(child.pid(), Pid(2));
        assert_eq!(child.ppid(), Some(Pid(1)));
        assert_eq!(child.space().read_u64(addr).unwrap(), 0x1234);
        assert_eq!(child.fds().len(), 1);
        assert_eq!(child.thread_count(), 1);
        assert_eq!(child.creation_stack(), &["main".to_string(), "spawn_worker".to_string()]);
        // Writes in the child do not affect the parent (copy semantics).
        let mut child = child;
        child.space_mut().write_u64(addr, 0x9999).unwrap();
        assert_eq!(p.space().read_u64(addr).unwrap(), 0x1234);
    }

    #[test]
    fn exit_marks_threads() {
        let mut p = proc_with_memory();
        p.set_exit(3);
        assert!(p.has_exited());
        assert_eq!(p.exit_code(), Some(3));
        assert!(matches!(p.thread(Tid(1)).unwrap().state(), ThreadState::Exited));
    }

    #[test]
    fn layout_slide_moves_private_regions_only() {
        let a = MemoryLayout::with_slide(0);
        let b = MemoryLayout::with_slide(0x10_0000);
        assert_ne!(a.static_base, b.static_base);
        assert_ne!(a.heap_base, b.heap_base);
        assert_eq!(a.lib_base, b.lib_base, "libraries are prelinked at a fixed address");
    }
}
