//! The update catalogue used by the engineering-effort evaluation (Table 1).
//!
//! The paper evaluates 40 releases of the four programs (5 updates each for
//! Apache httpd, vsftpd and OpenSSH, 25 for nginx) and reports, per program,
//! the size of the updates (changed LOC, functions, variables, types) and
//! the MCR-specific engineering effort (annotation LOC and state-transfer
//! LOC). Those quantities describe the *source releases*, which this
//! reproduction cannot re-diff; the catalogue therefore records the paper's
//! per-program figures as reference data and exposes the same aggregation
//! the Table 1 harness prints, alongside the live numbers measured from the
//! simulated programs (quiescence profile and annotation registries).

/// Engineering-effort record for one evaluated program (one row of Table 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateCatalogEntry {
    /// Program name.
    pub program: String,
    /// Version range covered by the updates.
    pub version_range: String,
    /// Number of releases (updates) considered.
    pub updates: u32,
    /// Lines of code changed across the updates.
    pub changed_loc: u32,
    /// Functions added, deleted or modified.
    pub changed_functions: u32,
    /// Variables added, deleted or modified.
    pub changed_variables: u32,
    /// Types added, deleted or modified.
    pub changed_types: u32,
    /// Annotation LOC required to prepare the program for MCR.
    pub annotation_loc: u32,
    /// Extra state-transfer LOC required across all the updates.
    pub state_transfer_loc: u32,
}

/// The paper's Table 1 catalogue.
pub fn paper_catalog() -> Vec<UpdateCatalogEntry> {
    vec![
        UpdateCatalogEntry {
            program: "httpd".into(),
            version_range: "2.2.23-2.3.8".into(),
            updates: 5,
            changed_loc: 10_844,
            changed_functions: 829,
            changed_variables: 28,
            changed_types: 48,
            annotation_loc: 181,
            state_transfer_loc: 302,
        },
        UpdateCatalogEntry {
            program: "nginx".into(),
            version_range: "0.8.54-1.0.15".into(),
            updates: 25,
            changed_loc: 9_681,
            changed_functions: 711,
            changed_variables: 51,
            changed_types: 54,
            annotation_loc: 22,
            state_transfer_loc: 335,
        },
        UpdateCatalogEntry {
            program: "vsftpd".into(),
            version_range: "1.1.0-2.0.2".into(),
            updates: 5,
            changed_loc: 5_830,
            changed_functions: 305,
            changed_variables: 121,
            changed_types: 35,
            annotation_loc: 82,
            state_transfer_loc: 21,
        },
        UpdateCatalogEntry {
            program: "sshd".into(),
            version_range: "3.5-3.8".into(),
            updates: 5,
            changed_loc: 14_370,
            changed_functions: 894,
            changed_variables: 84,
            changed_types: 33,
            annotation_loc: 49,
            state_transfer_loc: 135,
        },
    ]
}

/// Aggregate totals over a catalogue (the "Total" row of Table 1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CatalogTotals {
    /// Total number of updates.
    pub updates: u32,
    /// Total changed LOC.
    pub changed_loc: u32,
    /// Total changed functions.
    pub changed_functions: u32,
    /// Total changed variables.
    pub changed_variables: u32,
    /// Total changed types.
    pub changed_types: u32,
    /// Total annotation LOC.
    pub annotation_loc: u32,
    /// Total state-transfer LOC.
    pub state_transfer_loc: u32,
}

/// Computes the totals row for a catalogue.
pub fn totals(entries: &[UpdateCatalogEntry]) -> CatalogTotals {
    let mut t = CatalogTotals::default();
    for e in entries {
        t.updates += e.updates;
        t.changed_loc += e.changed_loc;
        t.changed_functions += e.changed_functions;
        t.changed_variables += e.changed_variables;
        t.changed_types += e.changed_types;
        t.annotation_loc += e.annotation_loc;
        t.state_transfer_loc += e.state_transfer_loc;
    }
    t
}

/// Number of generations (v1 plus updates) this reproduction models for a
/// program: nginx gets a long chain like the paper's 25-release series, the
/// others get 5 updates.
pub fn generations_for(program: &str) -> u32 {
    match program {
        "nginx" => 26,
        _ => 6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_paper_totals() {
        let catalog = paper_catalog();
        assert_eq!(catalog.len(), 4);
        let t = totals(&catalog);
        assert_eq!(t.updates, 40);
        assert_eq!(t.changed_loc, 40_725);
        assert_eq!(t.changed_functions, 2_739);
        assert_eq!(t.changed_variables, 284);
        assert_eq!(t.changed_types, 170);
        assert_eq!(t.annotation_loc, 334);
        assert_eq!(t.state_transfer_loc, 793);
    }

    #[test]
    fn generation_counts() {
        assert_eq!(generations_for("nginx"), 26);
        assert_eq!(generations_for("httpd"), 6);
        assert_eq!(generations_for("vsftpd"), 6);
    }
}
