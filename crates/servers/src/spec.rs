//! Server model specifications.
//!
//! Each of the paper's four evaluation programs is described by a
//! [`ServerSpec`]: its process/threading model, the allocator family its
//! request handling uses, whether it keeps state in (uninstrumented) shared
//! libraries, and whether it stores metadata bits inside pointer values.
//! These are exactly the characteristics that drive MCR's behaviour —
//! quiescent-point counts (Table 1), precise vs. likely pointer populations
//! (Table 2), instrumentation overhead (Table 3) and state-transfer scaling
//! (Figure 3).

/// How a server structures its processes and threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcessModel {
    /// A single event-driven process (nginx worker model collapsed to one
    /// process when `workers` is 0).
    SingleProcess,
    /// A master process plus `workers` forked worker processes, each running
    /// `threads_per_worker` worker threads (Apache httpd's `worker` MPM,
    /// nginx's master/worker model with `threads_per_worker == 0`).
    MasterWorker {
        /// Number of worker processes forked at startup.
        workers: u32,
        /// Worker threads spawned inside each worker process.
        threads_per_worker: u32,
    },
    /// A master process that accepts connections and forks one session
    /// process per connection (vsftpd, OpenSSH daemon).
    ProcessPerConnection,
}

/// Which allocator family request handling uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocatorModel {
    /// Standard `malloc` (instrumented when static instrumentation is on).
    Malloc,
    /// Region/pool allocation (nginx pools); opaque to precise tracing unless
    /// the region allocator is instrumented.
    Pools,
    /// Nested pools (Apache httpd APR pools): a parent pool with per-request
    /// child pools; never instrumented by the current prototype.
    NestedPools,
}

/// Full description of one simulated server program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerSpec {
    /// Program name (e.g. `"httpd"`).
    pub name: String,
    /// Base version string of the v1 release (e.g. `"2.2.23"`).
    pub base_version: String,
    /// TCP port the server listens on.
    pub port: u16,
    /// Path of the configuration file read at startup.
    pub config_path: String,
    /// Process/threading model.
    pub process_model: ProcessModel,
    /// Allocator family used by request handling.
    pub allocator: AllocatorModel,
    /// Whether the server keeps state inside (uninstrumented) shared
    /// libraries (OpenSSL contexts and the like).
    pub uses_lib_state: bool,
    /// Whether the server stores metadata in the low bits of pointers
    /// (nginx's encoded pointers, paper §7/§8).
    pub pointer_encoding: bool,
    /// Whether the server daemonizes at startup (creates a short-lived
    /// helper, visible as a short-lived thread class in Table 1).
    pub daemonize: bool,
    /// Whether request handling copies pointers into untyped buffers
    /// (type-unsafe idioms that produce likely pointers even with a fully
    /// instrumented allocator).
    pub type_unsafe_idioms: bool,
}

impl ServerSpec {
    /// Apache httpd with the `worker` MPM: 2 server processes, each with a
    /// (scaled-down) set of worker threads, nested APR pools, OpenSSL state.
    pub fn httpd() -> Self {
        ServerSpec {
            name: "httpd".into(),
            base_version: "2.2.23".into(),
            port: 80,
            config_path: "/etc/httpd.conf".into(),
            process_model: ProcessModel::MasterWorker { workers: 2, threads_per_worker: 8 },
            allocator: AllocatorModel::NestedPools,
            uses_lib_state: true,
            pointer_encoding: false,
            daemonize: true,
            type_unsafe_idioms: true,
        }
    }

    /// nginx: event-driven master/worker processes, pools and slabs, encoded
    /// pointers.
    pub fn nginx() -> Self {
        ServerSpec {
            name: "nginx".into(),
            base_version: "0.8.54".into(),
            port: 8080,
            config_path: "/etc/nginx.conf".into(),
            process_model: ProcessModel::MasterWorker { workers: 2, threads_per_worker: 0 },
            allocator: AllocatorModel::Pools,
            uses_lib_state: true,
            pointer_encoding: true,
            daemonize: true,
            type_unsafe_idioms: false,
        }
    }

    /// vsftpd: a master process forking one session process per connection.
    pub fn vsftpd() -> Self {
        ServerSpec {
            name: "vsftpd".into(),
            base_version: "1.1.0".into(),
            port: 21,
            config_path: "/etc/vsftpd.conf".into(),
            process_model: ProcessModel::ProcessPerConnection,
            allocator: AllocatorModel::Malloc,
            uses_lib_state: false,
            pointer_encoding: false,
            daemonize: false,
            type_unsafe_idioms: true,
        }
    }

    /// The OpenSSH daemon: per-connection session processes, OpenSSL state,
    /// daemonization and helper exec()s.
    pub fn sshd() -> Self {
        ServerSpec {
            name: "sshd".into(),
            base_version: "3.5p1".into(),
            port: 22,
            config_path: "/etc/sshd_config".into(),
            process_model: ProcessModel::ProcessPerConnection,
            allocator: AllocatorModel::Malloc,
            uses_lib_state: true,
            pointer_encoding: false,
            daemonize: true,
            type_unsafe_idioms: true,
        }
    }

    /// All four evaluation programs, in the paper's order.
    pub fn all() -> Vec<ServerSpec> {
        vec![Self::httpd(), Self::nginx(), Self::vsftpd(), Self::sshd()]
    }

    /// The version string of generation `generation` of this program
    /// (generation 1 is the base version).
    pub fn version_string(&self, generation: u32) -> String {
        if generation <= 1 {
            self.base_version.clone()
        } else {
            format!("{}+u{}", self.base_version, generation - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_programs_with_expected_models() {
        let all = ServerSpec::all();
        assert_eq!(all.len(), 4);
        assert!(matches!(ServerSpec::httpd().process_model, ProcessModel::MasterWorker { workers: 2, .. }));
        assert!(matches!(
            ServerSpec::nginx().process_model,
            ProcessModel::MasterWorker { threads_per_worker: 0, .. }
        ));
        assert_eq!(ServerSpec::vsftpd().process_model, ProcessModel::ProcessPerConnection);
        assert_eq!(ServerSpec::sshd().process_model, ProcessModel::ProcessPerConnection);
        assert!(ServerSpec::nginx().pointer_encoding);
        assert!(!ServerSpec::vsftpd().uses_lib_state);
        assert_eq!(ServerSpec::httpd().allocator, AllocatorModel::NestedPools);
    }

    #[test]
    fn version_strings_follow_generations() {
        let spec = ServerSpec::nginx();
        assert_eq!(spec.version_string(1), "0.8.54");
        assert_eq!(spec.version_string(2), "0.8.54+u1");
        assert_eq!(spec.version_string(26), "0.8.54+u25");
    }
}
