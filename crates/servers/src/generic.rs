//! The configurable server program used to model all four evaluation
//! programs.
//!
//! `GenericServer` implements [`Program`] once; a [`ServerSpec`] selects the
//! process model, allocator family and idioms that distinguish Apache httpd,
//! nginx, vsftpd and the OpenSSH daemon. The *generation* number selects the
//! release: later generations change data-structure layouts (new fields in
//! the connection and configuration records), the response banner and the
//! startup behaviour, which is exactly the class of change MCR must handle.

use mcr_core::error::{McrError, McrResult};
use mcr_core::program::{Program, ProgramEnv, StepOutcome, WaitInterest};
use mcr_core::ObjTreatment;
use mcr_procsim::{Fd, PoolId, SimDuration, SimError, Syscall};
use mcr_typemeta::{Field, TypeRegistry};

use crate::spec::{AllocatorModel, ProcessModel, ServerSpec};

/// A simulated MCR-enabled server program built from a [`ServerSpec`].
pub struct GenericServer {
    spec: ServerSpec,
    generation: u32,
    version: String,
    listen_fd: Option<Fd>,
    main_pool: Option<PoolId>,
    request_pool: Option<PoolId>,
    handled: u64,
}

impl GenericServer {
    /// Creates generation `generation` (1-based) of the program described by
    /// `spec`.
    pub fn new(spec: ServerSpec, generation: u32) -> Self {
        let version = spec.version_string(generation);
        GenericServer {
            spec,
            generation,
            version,
            listen_fd: None,
            main_pool: None,
            request_pool: None,
            handled: 0,
        }
    }

    /// The specification this instance was built from.
    pub fn spec(&self) -> &ServerSpec {
        &self.spec
    }

    /// The generation (release index) of this instance.
    pub fn generation(&self) -> u32 {
        self.generation
    }

    fn blocking_call(&self) -> &'static str {
        match self.spec.allocator {
            AllocatorModel::Pools => "epoll_wait",
            AllocatorModel::NestedPools => "accept",
            AllocatorModel::Malloc => "accept",
        }
    }

    // ------------------------------------------------------------------
    // Request handling
    // ------------------------------------------------------------------

    fn record_connection(&mut self, env: &mut ProgramEnv<'_>, conn_fd: Fd, bytes: u64) -> McrResult<()> {
        let conn_ty = env.type_id("conn_s")?;
        let next_off = env
            .types()
            .field_offset(conn_ty, "next")
            .ok_or_else(|| McrError::UnknownMetadata("conn_s.next".into()))?;
        let node = match self.spec.allocator {
            AllocatorModel::Malloc => env.alloc("conn_s", "handle_conn:conn")?,
            AllocatorModel::Pools | AllocatorModel::NestedPools => {
                let pool = self
                    .request_pool
                    .or(self.main_pool)
                    .ok_or_else(|| McrError::InvalidState("no pool created".into()))?;
                env.palloc(pool, "conn_s", "pool_alloc:conn")?
            }
        };
        env.write_u32(node, conn_fd.0 as u32)?;
        env.write_u32(node.offset(4), 1)?;
        if let Some(off) = env.types().field_offset(conn_ty, "bytes") {
            env.write_u64(node.offset(off), bytes)?;
        }
        if let Some(off) = env.types().field_offset(conn_ty, "started_at") {
            env.write_u64(node.offset(off), env.now_ns())?;
        }
        // Push onto the global connection list.
        let list = env.global_addr("conn_list")?;
        let head = env.read_ptr(list.offset(8))?;
        env.write_ptr(node.offset(next_off), head)?;
        env.write_ptr(list.offset(8), node)?;
        let count = env.read_u32(list)?;
        env.write_u32(list, count + 1)?;
        // Update the global statistics record.
        let stats = env.global_addr("stats")?;
        let requests = env.read_u64(stats)?;
        env.write_u64(stats, requests + 1)?;
        let total = env.read_u64(stats.offset(8))?;
        env.write_u64(stats.offset(8), total + bytes)?;
        // Type-unsafe idiom: occasionally stash the node pointer in an
        // untyped scratch buffer (a likely pointer even with full allocator
        // instrumentation, as the paper observes for vsftpd and OpenSSH).
        if self.spec.type_unsafe_idioms && requests.is_multiple_of(4) {
            let buf = env.global_addr("request_buf")?;
            env.write_u64(buf, node.0)?;
        }
        self.handled += 1;
        env.note_event_handled();
        Ok(())
    }

    fn respond(&self, env: &mut ProgramEnv<'_>, conn_fd: Fd) -> McrResult<u64> {
        // Read whatever request bytes arrived (they may not have yet).
        let request = env.syscall(Syscall::Read { fd: conn_fd, len: 4096 }).ok();
        let request_len = match request {
            Some(mcr_procsim::SyscallRet::Data(d)) => d.len(),
            _ => 0,
        };
        let body = format!(
            "{} {} gen{} OK ({request_len} byte request)",
            self.spec.name, self.version, self.generation
        );
        let len = body.len() as u64;
        env.syscall(Syscall::Write { fd: conn_fd, data: body.into_bytes() })?;
        env.charge_work(2_000 + request_len as u64 * 4);
        Ok(len)
    }

    fn accept_and_handle(&mut self, env: &mut ProgramEnv<'_>, loop_name: &str) -> McrResult<StepOutcome> {
        let fd = self.listen_fd.ok_or_else(|| McrError::InvalidState("server not started".into()))?;
        match env.syscall(Syscall::Accept { fd }) {
            Err(McrError::Sim(SimError::WouldBlock)) => Ok(StepOutcome::WouldBlock {
                call: self.blocking_call().to_string(),
                loop_name: loop_name.to_string(),
                wait: WaitInterest::Fd(fd),
            }),
            Err(e) => Err(e),
            Ok(ret) => {
                let conn_fd =
                    ret.as_fd().ok_or_else(|| McrError::InvalidState("accept returned no fd".into()))?;
                let bytes = self.respond(env, conn_fd)?;
                self.record_connection(env, conn_fd, bytes)?;
                Ok(StepOutcome::Progress)
            }
        }
    }

    fn master_accept_and_fork_session(&mut self, env: &mut ProgramEnv<'_>) -> McrResult<StepOutcome> {
        let fd = self.listen_fd.ok_or_else(|| McrError::InvalidState("server not started".into()))?;
        match env.syscall(Syscall::Accept { fd }) {
            Err(McrError::Sim(SimError::WouldBlock)) => Ok(StepOutcome::WouldBlock {
                call: "accept".to_string(),
                loop_name: "accept_loop".to_string(),
                wait: WaitInterest::Fd(fd),
            }),
            Err(e) => Err(e),
            Ok(ret) => {
                let conn_fd =
                    ret.as_fd().ok_or_else(|| McrError::InvalidState("accept returned no fd".into()))?;
                let bytes = self.respond(env, conn_fd)?;
                self.record_connection(env, conn_fd, bytes)?;
                // Hand the connection to a dedicated session process; the
                // forked child inherits the descriptor and finds its number
                // in the `session_fd` global (its private copy).
                let session_fd_g = env.global_addr("session_fd")?;
                env.write_u32(session_fd_g, conn_fd.0 as u32)?;
                env.scoped("spawn_session", |env| env.fork("session"))?;
                Ok(StepOutcome::Progress)
            }
        }
    }

    fn session_step(&mut self, env: &mut ProgramEnv<'_>) -> McrResult<StepOutcome> {
        let session_fd_g = env.global_addr("session_fd")?;
        let fd = Fd(env.read_u32(session_fd_g)? as i32);
        if fd.0 < 0 {
            // The session descriptor has not been published yet: there is no
            // kernel object to wait on, so retry on a short timer instead of
            // polling every round.
            return Ok(StepOutcome::WouldBlock {
                call: "read".to_string(),
                loop_name: "session_loop".to_string(),
                wait: WaitInterest::Timer(SimDuration(10_000)),
            });
        }
        match env.syscall(Syscall::Read { fd, len: 4096 }) {
            Err(McrError::Sim(SimError::WouldBlock)) => Ok(StepOutcome::WouldBlock {
                call: "read".to_string(),
                loop_name: "session_loop".to_string(),
                wait: WaitInterest::Fd(fd),
            }),
            Err(McrError::Sim(SimError::BadFd(_))) => Ok(StepOutcome::Exit),
            Err(e) => Err(e),
            Ok(mcr_procsim::SyscallRet::Data(data)) if data.is_empty() => {
                // Peer closed: the session ends.
                let _ = env.syscall(Syscall::Close { fd });
                Ok(StepOutcome::Exit)
            }
            Ok(mcr_procsim::SyscallRet::Data(data)) => {
                let reply =
                    format!("{} session gen{}: {} bytes", self.spec.name, self.generation, data.len());
                env.syscall(Syscall::Write { fd, data: reply.into_bytes() })?;
                env.charge_work(1_500);
                env.note_event_handled();
                Ok(StepOutcome::Progress)
            }
            Ok(_) => Ok(StepOutcome::Progress),
        }
    }
}

impl Program for GenericServer {
    fn name(&self) -> &str {
        &self.spec.name
    }

    fn version(&self) -> &str {
        &self.version
    }

    fn register_types(&mut self, types: &mut TypeRegistry) {
        let int = types.int("int", 4);
        let long = types.int("long", 8);

        let mut conf_fields = vec![Field::new("workers", int), Field::new("port", int)];
        if self.generation >= 2 {
            conf_fields.push(Field::new("timeout", int));
        }
        if self.generation >= 4 {
            conf_fields.push(Field::new("max_clients", int));
        }
        let conf = types.struct_type("conf_s", conf_fields);
        let _ = types.pointer("conf_s*", conf);

        let conn_fwd = types.opaque("conn_fwd", 32);
        let conn_ptr = types.pointer("conn_s*", conn_fwd);
        let mut conn_fields =
            vec![Field::new("fd", int), Field::new("state", int), Field::new("bytes", long)];
        if self.generation >= 3 {
            conn_fields.push(Field::new("started_at", long));
        }
        conn_fields.push(Field::new("next", conn_ptr));
        let _ = types.struct_type("conn_s", conn_fields);

        let _ = types.struct_type(
            "conn_list_s",
            vec![Field::new("count", int), Field::new("pad", int), Field::new("head", conn_ptr)],
        );

        let mut stats_fields = vec![Field::new("requests", long), Field::new("bytes", long)];
        if self.generation >= 2 {
            stats_fields.push(Field::new("errors", long));
        }
        let _ = types.struct_type("stats_s", stats_fields);

        let ssl = types.opaque("ssl_ctx_s", 256);
        let _ = types.pointer("ssl_ctx_s*", ssl);
        let _ = types.ptr_sized_int("uintptr_t");

        // Startup-time document/configuration cache: a sizable block of state
        // that is initialized once and never modified afterwards, so that
        // dirty-object tracking has something to skip (the bulk of real
        // server state behaves this way, which is what makes the paper's
        // 68%-86% transfer reduction possible).
        let cache_entry = types.opaque("cache_entry_s", 4096);
        let cache_ptr = types.pointer("cache_entry_s*", cache_entry);
        let _ = types.array("cache_entry_s*[16]", cache_ptr, 16);
    }

    fn startup(&mut self, env: &mut ProgramEnv<'_>) -> McrResult<()> {
        let spec = self.spec.clone();
        env.scoped("server_init", |env| {
            if spec.daemonize {
                env.scoped("daemonize", |env| env.spawn_thread("daemonize-helper"))?;
            }

            // Configuration.
            let conf_fd = env
                .scoped("read_config", |env| {
                    env.syscall(Syscall::Open { path: spec.config_path.clone(), create: false })
                })?
                .as_fd()
                .ok_or_else(|| McrError::InvalidState("open returned no fd".into()))?;
            let _config = env.syscall(Syscall::Read { fd: conf_fd, len: 256 })?;
            env.syscall(Syscall::Close { fd: conf_fd })?;

            // Listening socket.
            let fd = env.scoped("socket_setup", |env| {
                let fd = env
                    .syscall(Syscall::Socket)?
                    .as_fd()
                    .ok_or_else(|| McrError::InvalidState("socket returned no fd".into()))?;
                env.syscall(Syscall::Bind { fd, port: spec.port })?;
                env.syscall(Syscall::Listen { fd })?;
                Ok(fd)
            })?;
            self.listen_fd = Some(fd);

            // Global data structures.
            let conf_global = env.define_global("conf", "conf_s*")?;
            let conf = env.alloc("conf_s", "server_init:conf")?;
            env.write_u32(conf, 4)?;
            env.write_u32(conf.offset(4), u32::from(spec.port))?;
            env.write_ptr(conf_global, conf)?;
            let conn_list = env.define_global("conn_list", "conn_list_s")?;
            env.write_u32(conn_list, 0)?;
            let _stats = env.define_global("stats", "stats_s")?;
            let listen_fd_g = env.define_global("listen_fd_g", "int")?;
            env.write_u32(listen_fd_g, fd.0 as u32)?;
            let session_fd_g = env.define_global("session_fd", "int")?;
            env.write_u32(session_fd_g, u32::MAX)?;
            let _buf = env.define_global_opaque("request_buf", 64)?;

            // Startup-time document cache: initialized here, read-only
            // afterwards, so it is reinitialized by the new version's own
            // startup and skipped by dirty-object tracking.
            let cache_global = env.define_global("doc_cache", "cache_entry_s*[16]")?;
            for i in 0..16u64 {
                let entry = env.alloc("cache_entry_s", "server_init:doc_cache")?;
                env.write_bytes(entry, &[b'x'; 128])?;
                env.write_ptr(cache_global.offset(i * 8), entry)?;
            }

            // Shared-library state (uninstrumented).
            if spec.uses_lib_state {
                let ssl_global = env.define_global("ssl_ctx", "ssl_ctx_s*")?;
                let ssl = env.lib_alloc(256, "libssl:ssl_ctx")?;
                env.write_u64(ssl, 0x55AA_55AA)?;
                env.write_ptr(ssl_global, ssl)?;
            }

            // nginx-style encoded pointers: metadata lives in the low bits.
            if spec.pointer_encoding {
                let cycle_global = env.define_global("cycle", "uintptr_t")?;
                let cycle = env.alloc("conf_s", "ngx_init:cycle")?;
                env.write_u64(cycle_global, cycle.0 | 0b01)?;
                env.add_obj_handler("cycle", ObjTreatment::EncodedPointers { mask_bits: 2 }, 22);
            }

            // Custom allocators.
            match spec.allocator {
                AllocatorModel::Malloc => {}
                AllocatorModel::Pools => {
                    self.main_pool = Some(env.create_pool(256 * 1024, None)?);
                }
                AllocatorModel::NestedPools => {
                    let main = env.create_pool(256 * 1024, None)?;
                    self.main_pool = Some(main);
                    self.request_pool = Some(env.create_pool(128 * 1024, Some(main))?);
                }
            }

            // Annotation effort accounting (Table 1 "Ann LOC"): source tweaks
            // and handlers the real programs required.
            match spec.name.as_str() {
                "httpd" => env.note_annotation_loc(8 + 10 + 163),
                "nginx" => { /* the 22 LOC were accounted with the pointer-encoding handler */ }
                "vsftpd" => env.note_annotation_loc(82),
                "sshd" => env.note_annotation_loc(49),
                _ => {}
            }

            // Worker processes.
            if let ProcessModel::MasterWorker { workers, .. } = spec.process_model {
                env.scoped("spawn_workers", |env| {
                    for _ in 0..workers {
                        env.fork("worker")?;
                    }
                    Ok(())
                })?;
            }
            Ok(())
        })
    }

    fn process_init(&mut self, env: &mut ProgramEnv<'_>, kind: &str) -> McrResult<()> {
        if kind != "worker" {
            return Ok(());
        }
        if let ProcessModel::MasterWorker { threads_per_worker, .. } = self.spec.process_model {
            env.scoped("worker_init", |env| {
                for i in 1..=threads_per_worker {
                    env.spawn_thread(&format!("worker-{i}"))?;
                }
                Ok(())
            })?;
        }
        Ok(())
    }

    fn thread_step(&mut self, env: &mut ProgramEnv<'_>) -> McrResult<StepOutcome> {
        let name = env.thread_name().to_string();
        if name.starts_with("daemonize") {
            return Ok(StepOutcome::Exit);
        }
        if name.starts_with("session") {
            return self.session_step(env);
        }
        if name == "main" {
            return match self.spec.process_model {
                ProcessModel::SingleProcess => self.accept_and_handle(env, "main_loop"),
                ProcessModel::MasterWorker { .. } => Ok(StepOutcome::WouldBlock {
                    call: "sigsuspend".to_string(),
                    loop_name: "master_loop".to_string(),
                    wait: WaitInterest::External,
                }),
                ProcessModel::ProcessPerConnection => self.master_accept_and_fork_session(env),
            };
        }
        if name == "worker-main" {
            return match self.spec.process_model {
                ProcessModel::MasterWorker { threads_per_worker: 0, .. } => {
                    self.accept_and_handle(env, "worker_loop")
                }
                _ => Ok(StepOutcome::WouldBlock {
                    call: "poll".to_string(),
                    loop_name: "listener_loop".to_string(),
                    wait: WaitInterest::External,
                }),
            };
        }
        if name.starts_with("worker-") {
            return self.accept_and_handle(env, "worker_loop");
        }
        Ok(StepOutcome::WouldBlock {
            call: "poll".to_string(),
            loop_name: "idle_loop".to_string(),
            wait: WaitInterest::External,
        })
    }
}

/// Convenience constructors for the four evaluation programs.
pub mod programs {
    use super::GenericServer;
    use crate::spec::ServerSpec;

    /// Apache httpd, generation `generation`.
    pub fn httpd(generation: u32) -> GenericServer {
        GenericServer::new(ServerSpec::httpd(), generation)
    }

    /// nginx, generation `generation`.
    pub fn nginx(generation: u32) -> GenericServer {
        GenericServer::new(ServerSpec::nginx(), generation)
    }

    /// vsftpd, generation `generation`.
    pub fn vsftpd(generation: u32) -> GenericServer {
        GenericServer::new(ServerSpec::vsftpd(), generation)
    }

    /// The OpenSSH daemon, generation `generation`.
    pub fn sshd(generation: u32) -> GenericServer {
        GenericServer::new(ServerSpec::sshd(), generation)
    }
}

#[cfg(test)]
mod tests {
    use super::programs::*;
    use mcr_core::runtime::{boot, live_update, run_round, run_rounds, BootOptions, UpdateOptions};
    use mcr_core::QuiescenceProfiler;
    use mcr_procsim::Kernel;
    use mcr_typemeta::InstrumentationConfig;

    fn kernel_with_files() -> Kernel {
        let mut kernel = Kernel::new();
        for path in ["/etc/httpd.conf", "/etc/nginx.conf", "/etc/vsftpd.conf", "/etc/sshd_config"] {
            kernel.add_file(path, b"workers=2\nloglevel=info\n".to_vec());
        }
        kernel
    }

    fn drive_requests(kernel: &mut Kernel, instance: &mut mcr_core::McrInstance, port: u16, n: usize) {
        for _ in 0..n {
            let c = kernel.client_connect(port).unwrap();
            kernel.client_send(c, b"GET /index.html HTTP/1.0".to_vec()).unwrap();
            run_rounds(kernel, instance, 2).unwrap();
            assert!(kernel.client_recv(c).is_some(), "server answered");
        }
    }

    #[test]
    fn httpd_boots_with_master_and_worker_processes() {
        let mut kernel = kernel_with_files();
        let mut instance = boot(&mut kernel, Box::new(httpd(1)), &BootOptions::default()).unwrap();
        assert_eq!(instance.state.processes.len(), 3, "master + 2 worker processes");
        assert!(instance.state.threads.len() >= 3 + 16, "worker threads spawned");
        drive_requests(&mut kernel, &mut instance, 80, 3);
        assert_eq!(instance.state.counters.events_handled, 3);
        let report = QuiescenceProfiler::analyze(&kernel, &instance.state);
        assert!(report.short_lived_classes() >= 1, "daemonize helper is short-lived");
        assert!(report.long_lived_classes() >= 2);
        assert!(report.quiescent_points() >= 2);
    }

    #[test]
    fn nginx_is_event_driven_with_pools() {
        let mut kernel = kernel_with_files();
        let mut instance = boot(&mut kernel, Box::new(nginx(1)), &BootOptions::default()).unwrap();
        assert_eq!(instance.state.processes.len(), 3);
        drive_requests(&mut kernel, &mut instance, 8080, 4);
        // Pool allocations are invisible to the heap allocator (opaque).
        let report = QuiescenceProfiler::analyze(&kernel, &instance.state);
        let worker_point = report.point_for("worker-main").or_else(|| report.point_for("worker"));
        assert!(worker_point.is_some());
        assert_eq!(
            instance.state.annotations.annotation_loc(),
            22,
            "nginx needs only the pointer-encoding annotation"
        );
    }

    #[test]
    fn vsftpd_forks_session_processes_per_connection() {
        let mut kernel = kernel_with_files();
        let mut instance = boot(&mut kernel, Box::new(vsftpd(1)), &BootOptions::default()).unwrap();
        assert_eq!(instance.state.processes.len(), 1);
        drive_requests(&mut kernel, &mut instance, 21, 3);
        assert_eq!(instance.state.processes.len(), 4, "one session process per connection");
    }

    #[test]
    fn httpd_live_update_succeeds_with_open_connections() {
        let mut kernel = kernel_with_files();
        let mut v1 = boot(&mut kernel, Box::new(httpd(1)), &BootOptions::default()).unwrap();
        drive_requests(&mut kernel, &mut v1, 80, 4);
        let (v2, outcome) = live_update(
            &mut kernel,
            v1,
            Box::new(httpd(2)),
            InstrumentationConfig::full(),
            &UpdateOptions::default(),
        );
        assert!(outcome.is_committed(), "{:?}", outcome.conflicts());
        let report = outcome.report();
        assert_eq!(report.open_connections, 4);
        assert!(report.transfer.objects_transferred() > 0);
        assert_eq!(v2.state.version, "2.2.23+u1");
        // The per-process connection lists survived: summed over the new
        // version's processes, all four handled connections are still
        // recorded (requests were handled by worker processes, each of which
        // keeps its own copy of the `conn_list` global).
        let list = v2.state.statics.lookup("conn_list").unwrap().addr;
        let total: u32 = v2
            .state
            .processes
            .iter()
            .map(|&pid| kernel.process(pid).unwrap().space().read_u32(list).unwrap())
            .sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn sshd_live_update_recreates_session_processes() {
        let mut kernel = kernel_with_files();
        let mut v1 = boot(&mut kernel, Box::new(sshd(1)), &BootOptions::default()).unwrap();
        drive_requests(&mut kernel, &mut v1, 22, 2);
        assert_eq!(v1.state.processes.len(), 3);
        let (mut v2, outcome) = live_update(
            &mut kernel,
            v1,
            Box::new(sshd(2)),
            InstrumentationConfig::full(),
            &UpdateOptions::default(),
        );
        assert!(outcome.is_committed(), "{:?}", outcome.conflicts());
        assert_eq!(outcome.report().processes_recreated, 2, "both session processes recreated");
        // A client still talking to its session gets an answer from the new
        // version.
        let c = kernel.client_connect(22).unwrap();
        kernel.client_send(c, b"SSH-2.0-client".to_vec()).unwrap();
        run_rounds(&mut kernel, &mut v2, 3).unwrap();
        assert!(kernel.client_recv(c).is_some());
    }

    #[test]
    fn nginx_chain_of_updates() {
        let mut kernel = kernel_with_files();
        let mut instance = boot(&mut kernel, Box::new(nginx(1)), &BootOptions::default()).unwrap();
        for generation in 2..=5u32 {
            let c = kernel.client_connect(8080).unwrap();
            kernel.client_send(c, b"GET /".to_vec()).unwrap();
            run_round(&mut kernel, &mut instance).unwrap();
            let opts =
                UpdateOptions { layout_slide: 0x1_0000_0000 * u64::from(generation), ..Default::default() };
            let (next, outcome) = live_update(
                &mut kernel,
                instance,
                Box::new(nginx(generation)),
                InstrumentationConfig::full_with_region_instrumentation(),
                &opts,
            );
            assert!(outcome.is_committed(), "gen {generation}: {:?}", outcome.conflicts());
            instance = next;
        }
        assert_eq!(instance.state.version, "0.8.54+u4");
    }
}
