//! # mcr-servers — simulated evaluation programs for MCR
//!
//! Models of the four server programs the paper evaluates — Apache httpd,
//! nginx, vsftpd and the OpenSSH daemon — implemented against the
//! [`mcr_core::Program`] API and running on the `mcr-procsim` substrate.
//! Each program is described by a [`ServerSpec`] (process model, allocator
//! family, library state, pointer-encoding idioms) and parameterized by a
//! *generation* number selecting the release; later generations change data
//! structure layouts and behaviour the way the paper's 40 updates do.
//!
//! ```rust
//! use mcr_core::runtime::{boot, BootOptions};
//! use mcr_procsim::Kernel;
//! use mcr_servers::programs;
//!
//! # fn main() -> Result<(), mcr_core::McrError> {
//! let mut kernel = Kernel::new();
//! kernel.add_file("/etc/nginx.conf", b"worker_processes 2;".to_vec());
//! let instance = boot(&mut kernel, Box::new(programs::nginx(1)), &BootOptions::default())?;
//! assert_eq!(instance.state.processes.len(), 3); // master + 2 workers
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod generic;
pub mod scenarios;
pub mod spec;
pub mod updates;

pub use cache::{cache_entry_nodes, dirty_cache_records, CacheServer, CACHE_BUCKETS, CACHE_PORT};
pub use generic::{programs, GenericServer};
pub use scenarios::{
    apply_scenario_writes, connection_nodes, dirty_cache_entries, dirty_connection_nodes, precopy_scenarios,
    stamp_request_scratch, PrecopyScenario,
};
pub use spec::{AllocatorModel, ProcessModel, ServerSpec};
pub use updates::{generations_for, paper_catalog, totals, CatalogTotals, UpdateCatalogEntry};

/// Installs the configuration files and served documents every simulated
/// server expects into a kernel's file system.
pub fn install_standard_files(kernel: &mut mcr_procsim::Kernel) {
    for path in ["/etc/httpd.conf", "/etc/nginx.conf", "/etc/vsftpd.conf", "/etc/sshd_config"] {
        kernel.add_file(path, b"workers=2\nloglevel=info\nkeepalive=on\n".to_vec());
    }
    kernel.add_file("/var/www/index.html", vec![b'x'; 1024]);
    kernel.add_file("/var/ftp/large.bin", vec![b'y'; 1024 * 1024]);
}

/// Constructs a program model for `name` (one of `"httpd"`, `"nginx"`,
/// `"vsftpd"`, `"sshd"`) at the given generation.
///
/// # Panics
///
/// Panics on an unknown program name.
pub fn program_by_name(name: &str, generation: u32) -> GenericServer {
    match name {
        "httpd" => programs::httpd(generation),
        "nginx" => programs::nginx(generation),
        "vsftpd" => programs::vsftpd(generation),
        "sshd" => programs::sshd(generation),
        other => panic!("unknown program {other}"),
    }
}

/// Constructs a boxed program model for `name`: one of the four paper
/// programs, or `"cache"` for the single-process memcached-style
/// [`CacheServer`] archetype.
///
/// # Panics
///
/// Panics on an unknown program name.
pub fn boxed_program_by_name(name: &str, generation: u32) -> Box<dyn mcr_core::Program> {
    match name {
        "cache" => Box::new(CacheServer::new(generation)),
        other => Box::new(program_by_name(other, generation)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_by_name_covers_all_specs() {
        for spec in ServerSpec::all() {
            let p = program_by_name(&spec.name, 1);
            assert_eq!(p.spec().name, spec.name);
            assert_eq!(p.generation(), 1);
        }
    }

    #[test]
    #[should_panic(expected = "unknown program")]
    fn unknown_program_panics() {
        let _ = program_by_name("postfix", 1);
    }
}
