//! A memcached-style slab cache: the single-process big-heap archetype.
//!
//! The four paper programs are multiprocess (or at least multi-threaded), so
//! the pair-parallel trace/transfer phase already scales them. This server
//! models the workload shape that phase *cannot* touch — one process owning
//! one huge heap of small typed records plus bulk value blobs, the shape of
//! a memcached-style cache or an in-memory DBMS — which is exactly what
//! [`UpdateOptions::intra_pair_shards`](mcr_core::runtime::UpdateOptions)
//! parallelizes. `benches/intra_pair.rs` sweeps heap size × shard count over
//! this server.
//!
//! The cache is a 64-bucket hash table of `entry_s` records. Each entry owns
//! an *untyped* value blob (allocated through `alloc_bytes`, so transfer
//! copies it verbatim via the range-copy fast path), while the entries
//! themselves are fully typed (generation 2 adds a `hits` field, forcing the
//! structural field-map transform with pointer rewriting on every entry).
//! The text protocol exposes the get/set/evict workload hooks:
//!
//! * `set <vsize>` — insert one entry with a `vsize`-byte value;
//! * `fill <n> <vsize>` — bulk-insert `n` entries (how the bench sizes the
//!   heap without driving one simulated request per entry);
//! * `get` — look up a deterministically chosen key and stamp the entry's
//!   LRU field (a real store, so gets dirty pages like memcached's LRU);
//! * `evict` — unlink the head entry of the next bucket (the freed records
//!   become garbage that the next trace sweeps).

use mcr_core::error::{McrError, McrResult};
use mcr_core::program::{Program, ProgramEnv, StepOutcome, WaitInterest};
use mcr_core::runtime::McrInstance;
use mcr_procsim::{Addr, Fd, Kernel, SimError, Syscall};
use mcr_typemeta::{Field, TypeRegistry};

/// TCP port the cache listens on (memcached's default).
pub const CACHE_PORT: u16 = 11211;

/// Hash buckets of the cache table (the `cache_table` global).
pub const CACHE_BUCKETS: u64 = 64;

/// The memcached-style single-process slab cache.
pub struct CacheServer {
    generation: u32,
    version: String,
    listen_fd: Option<Fd>,
}

impl CacheServer {
    /// Creates generation `generation` (1-based) of the cache server.
    pub fn new(generation: u32) -> Self {
        let version =
            if generation <= 1 { "1.4.0".to_string() } else { format!("1.4.0+u{}", generation - 1) };
        CacheServer { generation, version, listen_fd: None }
    }

    /// The generation (release index) of this instance.
    pub fn generation(&self) -> u32 {
        self.generation
    }

    fn insert_entries(&self, env: &mut ProgramEnv<'_>, count: u64, vsize: u64) -> McrResult<()> {
        let entry_ty = env.type_id("entry_s")?;
        let value_off = env
            .types()
            .field_offset(entry_ty, "value")
            .ok_or_else(|| McrError::UnknownMetadata("entry_s.value".into()))?;
        let next_off = env
            .types()
            .field_offset(entry_ty, "next")
            .ok_or_else(|| McrError::UnknownMetadata("entry_s.next".into()))?;
        let table = env.global_addr("cache_table")?;
        let stats = env.global_addr("cache_stats")?;
        let vsize = vsize.clamp(8, 16 * 4096);
        for _ in 0..count {
            let sets = env.read_u64(stats)?;
            let key = sets;
            let entry = env.alloc("entry_s", "cache_set:entry")?;
            let value = env.alloc_bytes(vsize, "cache_set:value")?;
            // Deterministic printable payload — conservative scanning of the
            // blob must find no likely pointers in it.
            env.write_bytes(value, &vec![b'a' + (key % 23) as u8; vsize as usize])?;
            env.write_u64(entry, key)?;
            env.write_u32(entry.offset(8), 1)?;
            env.write_u32(entry.offset(12), vsize as u32)?;
            env.write_ptr(entry.offset(value_off), value)?;
            let bucket = table.offset((key % CACHE_BUCKETS) * 8);
            let head = env.read_ptr(bucket)?;
            env.write_ptr(entry.offset(next_off), head)?;
            env.write_ptr(bucket, entry)?;
            env.write_u64(stats, sets + 1)?;
            let bytes = env.read_u64(stats.offset(24))?;
            env.write_u64(stats.offset(24), bytes + vsize)?;
            env.charge_work(1_000 + vsize / 8);
        }
        Ok(())
    }

    /// Looks up a deterministically chosen key and stamps the entry's LRU
    /// field — a real store, so cache reads dirty pages the way memcached's
    /// LRU touch does.
    fn get_entry(&self, env: &mut ProgramEnv<'_>) -> McrResult<u64> {
        let entry_ty = env.type_id("entry_s")?;
        let next_off = env
            .types()
            .field_offset(entry_ty, "next")
            .ok_or_else(|| McrError::UnknownMetadata("entry_s.next".into()))?;
        let table = env.global_addr("cache_table")?;
        let stats = env.global_addr("cache_stats")?;
        let sets = env.read_u64(stats)?;
        let gets = env.read_u64(stats.offset(8))?;
        env.write_u64(stats.offset(8), gets + 1)?;
        if sets == 0 {
            return Ok(0);
        }
        let key = gets % sets;
        let mut node = env.read_ptr(table.offset((key % CACHE_BUCKETS) * 8))?;
        let mut hops = 0u64;
        while !node.is_null() && hops < 100_000 {
            if env.read_u64(node)? == key {
                // LRU touch: stamp the state field with the get counter.
                env.write_u32(node.offset(8), (gets + 2) as u32)?;
                env.charge_work(500 + hops * 20);
                return Ok(key);
            }
            node = env.read_ptr(node.offset(next_off))?;
            hops += 1;
        }
        env.charge_work(500 + hops * 20);
        Ok(0)
    }

    /// Unlinks the head entry of the next bucket in round-robin order. The
    /// unlinked entry (and its value blob) become unreachable garbage the
    /// next trace — or delta retrace sweep — drops.
    fn evict_entry(&self, env: &mut ProgramEnv<'_>) -> McrResult<bool> {
        let entry_ty = env.type_id("entry_s")?;
        let next_off = env
            .types()
            .field_offset(entry_ty, "next")
            .ok_or_else(|| McrError::UnknownMetadata("entry_s.next".into()))?;
        let table = env.global_addr("cache_table")?;
        let stats = env.global_addr("cache_stats")?;
        let evictions = env.read_u64(stats.offset(16))?;
        env.write_u64(stats.offset(16), evictions + 1)?;
        for probe in 0..CACHE_BUCKETS {
            let bucket = table.offset(((evictions + probe) % CACHE_BUCKETS) * 8);
            let head = env.read_ptr(bucket)?;
            if !head.is_null() {
                let next = env.read_ptr(head.offset(next_off))?;
                env.write_ptr(bucket, next)?;
                env.charge_work(800);
                return Ok(true);
            }
        }
        Ok(false)
    }

    fn handle_request(&self, env: &mut ProgramEnv<'_>, conn_fd: Fd) -> McrResult<()> {
        let request = match env.syscall(Syscall::Read { fd: conn_fd, len: 4096 }).ok() {
            Some(mcr_procsim::SyscallRet::Data(d)) => String::from_utf8_lossy(&d).into_owned(),
            _ => String::new(),
        };
        let mut words = request.split_whitespace();
        let reply = match words.next() {
            Some("set") => {
                let vsize = words.next().and_then(|w| w.parse().ok()).unwrap_or(64u64);
                self.insert_entries(env, 1, vsize)?;
                format!("STORED gen{}", self.generation)
            }
            Some("fill") => {
                let count = words.next().and_then(|w| w.parse().ok()).unwrap_or(1u64);
                let vsize = words.next().and_then(|w| w.parse().ok()).unwrap_or(64u64);
                self.insert_entries(env, count, vsize)?;
                format!("STORED {count} gen{}", self.generation)
            }
            Some("get") => {
                let key = self.get_entry(env)?;
                format!("VALUE {key} gen{}", self.generation)
            }
            Some("evict") => {
                let evicted = self.evict_entry(env)?;
                format!("EVICTED {evicted} gen{}", self.generation)
            }
            _ => format!("cache {} gen{} ERROR", self.version, self.generation),
        };
        env.syscall(Syscall::Write { fd: conn_fd, data: reply.into_bytes() })?;
        env.note_event_handled();
        Ok(())
    }
}

impl Program for CacheServer {
    fn name(&self) -> &str {
        "cache"
    }

    fn version(&self) -> &str {
        &self.version
    }

    fn register_types(&mut self, types: &mut TypeRegistry) {
        let int = types.int("int", 4);
        let long = types.int("long", 8);

        let value_fwd = types.opaque("value_fwd", 64);
        let value_ptr = types.pointer("value*", value_fwd);
        let entry_fwd = types.opaque("entry_fwd", 48);
        let entry_ptr = types.pointer("entry_s*", entry_fwd);

        let mut entry_fields =
            vec![Field::new("key", long), Field::new("state", int), Field::new("len", int)];
        if self.generation >= 2 {
            // The update under study: the new release tracks per-entry hit
            // counts, growing every cache entry — the structural transform
            // (zero-fill + pointer rewrite) runs once per entry.
            entry_fields.push(Field::new("hits", long));
        }
        entry_fields.push(Field::new("value", value_ptr));
        entry_fields.push(Field::new("next", entry_ptr));
        let _ = types.struct_type("entry_s", entry_fields);

        let _ = types.struct_type(
            "cache_stats_s",
            vec![
                Field::new("sets", long),
                Field::new("gets", long),
                Field::new("evictions", long),
                Field::new("bytes", long),
            ],
        );
        let _ = types.array("entry_s*[64]", entry_ptr, CACHE_BUCKETS);
    }

    fn startup(&mut self, env: &mut ProgramEnv<'_>) -> McrResult<()> {
        env.scoped("cache_init", |env| {
            let fd = env.scoped("socket_setup", |env| {
                let fd = env
                    .syscall(Syscall::Socket)?
                    .as_fd()
                    .ok_or_else(|| McrError::InvalidState("socket returned no fd".into()))?;
                env.syscall(Syscall::Bind { fd, port: CACHE_PORT })?;
                env.syscall(Syscall::Listen { fd })?;
                Ok(fd)
            })?;
            self.listen_fd = Some(fd);

            let table = env.define_global("cache_table", "entry_s*[64]")?;
            for i in 0..CACHE_BUCKETS {
                env.write_u64(table.offset(i * 8), 0)?;
            }
            let _stats = env.define_global("cache_stats", "cache_stats_s")?;
            let listen_fd_g = env.define_global("listen_fd_g", "int")?;
            env.write_u32(listen_fd_g, fd.0 as u32)?;
            // Annotation effort: the slab-cache wrappers and the eviction
            // quiescence tweak.
            env.note_annotation_loc(14);
            Ok(())
        })
    }

    fn thread_step(&mut self, env: &mut ProgramEnv<'_>) -> McrResult<StepOutcome> {
        let fd = self.listen_fd.ok_or_else(|| McrError::InvalidState("cache not started".into()))?;
        match env.syscall(Syscall::Accept { fd }) {
            Err(McrError::Sim(SimError::WouldBlock)) => Ok(StepOutcome::WouldBlock {
                call: "epoll_wait".to_string(),
                loop_name: "cache_loop".to_string(),
                wait: WaitInterest::Fd(fd),
            }),
            Err(e) => Err(e),
            Ok(ret) => {
                let conn_fd =
                    ret.as_fd().ok_or_else(|| McrError::InvalidState("accept returned no fd".into()))?;
                self.handle_request(env, conn_fd)?;
                Ok(StepOutcome::Progress)
            }
        }
    }
}

/// Collects the addresses of every live cache entry, in bucket-then-chain
/// order, for the cache's (single) process. Used by the property tests'
/// seeded mutator and the intra-pair bench.
pub fn cache_entry_nodes(kernel: &Kernel, instance: &McrInstance) -> Vec<Addr> {
    let Some(table) = instance.state.statics.lookup("cache_table") else {
        return Vec::new();
    };
    let Some(entry_ty) = instance.state.types.lookup("entry_s") else {
        return Vec::new();
    };
    let Some(next_off) = instance.state.types.field_offset(entry_ty, "next") else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for &pid in &instance.state.processes {
        let Ok(proc) = kernel.process(pid) else { continue };
        for bucket in 0..CACHE_BUCKETS {
            let Ok(head) = proc.space().read_u64(table.addr.offset(bucket * 8)) else { continue };
            let mut node = Addr(head);
            while !node.is_null() && out.len() < 1_000_000 {
                out.push(node);
                match proc.space().read_u64(node.offset(next_off)) {
                    Ok(next) => node = Addr(next),
                    Err(_) => break,
                }
            }
        }
    }
    out
}

/// The seeded write workload over the cache: stamps the `state` field of
/// every `stride`-th cache entry with `stamp`, returning the number of
/// stores issued. Stores go through the simulated address space, so they
/// dirty pages and stamp the current write epoch exactly like application
/// stores — the single-process analogue of
/// [`dirty_connection_nodes`](crate::scenarios::dirty_connection_nodes).
pub fn dirty_cache_records(kernel: &mut Kernel, instance: &McrInstance, stride: usize, stamp: u32) -> usize {
    let nodes = cache_entry_nodes(kernel, instance);
    let Some(&pid) = instance.state.processes.first() else {
        return 0;
    };
    let Ok(proc) = kernel.process_mut(pid) else {
        return 0;
    };
    let mut written = 0;
    for addr in nodes.into_iter().step_by(stride.max(1)) {
        if proc.space_mut().write_u32(addr.offset(8), stamp).is_ok() {
            written += 1;
        }
    }
    written
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcr_core::runtime::{boot, live_update, run_rounds, BootOptions, UpdateOptions};
    use mcr_typemeta::InstrumentationConfig;

    fn send(kernel: &mut Kernel, instance: &mut McrInstance, req: &str) -> String {
        let c = kernel.client_connect(CACHE_PORT).unwrap();
        kernel.client_send(c, req.as_bytes().to_vec()).unwrap();
        run_rounds(kernel, instance, 2).unwrap();
        let reply = kernel.client_recv(c).map(|d| String::from_utf8_lossy(&d).into_owned());
        kernel.client_close(c).unwrap();
        reply.unwrap_or_default()
    }

    #[test]
    fn cache_fills_gets_and_evicts() {
        let mut kernel = Kernel::new();
        let mut v1 = boot(&mut kernel, Box::new(CacheServer::new(1)), &BootOptions::default()).unwrap();
        assert_eq!(v1.state.processes.len(), 1, "single-process archetype");
        assert!(send(&mut kernel, &mut v1, "fill 100 64").starts_with("STORED 100"));
        assert!(send(&mut kernel, &mut v1, "set 32").starts_with("STORED"));
        assert_eq!(cache_entry_nodes(&kernel, &v1).len(), 101);
        assert!(send(&mut kernel, &mut v1, "get").starts_with("VALUE"));
        assert!(send(&mut kernel, &mut v1, "evict").starts_with("EVICTED true"));
        assert_eq!(cache_entry_nodes(&kernel, &v1).len(), 100);
        let written = dirty_cache_records(&mut kernel, &v1, 7, 0xBEEF);
        assert!(written >= 14, "the seeded mutator reaches the slab");
    }

    #[test]
    fn cache_live_update_transfers_entries_and_values() {
        let mut kernel = Kernel::new();
        let mut v1 = boot(&mut kernel, Box::new(CacheServer::new(1)), &BootOptions::default()).unwrap();
        assert!(send(&mut kernel, &mut v1, "fill 60 128").starts_with("STORED"));
        assert!(send(&mut kernel, &mut v1, "get").starts_with("VALUE 0"));
        let (mut v2, outcome) = live_update(
            &mut kernel,
            v1,
            Box::new(CacheServer::new(2)),
            InstrumentationConfig::full(),
            &UpdateOptions { intra_pair_shards: 4, ..Default::default() },
        );
        assert!(outcome.is_committed(), "{:?}", outcome.conflicts());
        // Entries and their value blobs moved into the new heap.
        assert!(outcome.report().transfer.objects_transferred() >= 120);
        let nodes = cache_entry_nodes(&kernel, &v2);
        assert_eq!(nodes.len(), 60, "every entry survived the update");
        // The new layout has the zero-initialized hits field and the value
        // payload survived verbatim behind the rewritten pointer.
        let entry_ty = v2.state.types.lookup("entry_s").unwrap();
        let hits_off = v2.state.types.field_offset(entry_ty, "hits").unwrap();
        let value_off = v2.state.types.field_offset(entry_ty, "value").unwrap();
        let pid = v2.state.processes[0];
        let space = kernel.process(pid).unwrap().space();
        let entry = nodes[0];
        let key = space.read_u64(entry).unwrap();
        assert_eq!(space.read_u64(entry.offset(hits_off)).unwrap(), 0);
        let value = Addr(space.read_u64(entry.offset(value_off)).unwrap());
        assert_eq!(space.read_u8(value).unwrap(), b'a' + (key % 23) as u8);
        // Still serving under the new generation.
        assert!(send(&mut kernel, &mut v2, "get").contains("gen2"));
        assert!(send(&mut kernel, &mut v2, "set 16").contains("gen2"));
        assert_eq!(cache_entry_nodes(&kernel, &v2).len(), 61);
    }
}
