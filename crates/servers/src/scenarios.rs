//! Pre-copy evaluation scenarios: a read-mostly vs. write-heavy pair.
//!
//! The pre-copy phase wins exactly when the *working set written while the
//! copy is in flight* is small compared to the total live heap. These
//! scenarios make that axis explicit: both boot the same multiprocess
//! server and serve the same traffic, but differ in how many connection
//! records the (simulated) application keeps rewriting between pre-copy
//! rounds. The write workload itself is modelled by
//! [`dirty_connection_nodes`], which walks each process's global
//! `conn_list` and bumps the `state` field of the first *k* nodes — raw
//! stores through the simulated address space, so they stamp the write
//! epoch exactly like real application stores would.
//!
//! Determinism contract: the same sequence of [`dirty_connection_nodes`]
//! calls produces the same final memory whether the calls are interleaved
//! with pre-copy rounds or all applied before a stop-the-world update,
//! which is what lets the downtime bench assert byte-identical kernel
//! fingerprints across both configurations.

use mcr_core::runtime::McrInstance;
use mcr_procsim::{Addr, Kernel, Pid};

/// One point of the pre-copy evaluation: a server, its pre-update traffic,
/// and the write rate applied between pre-copy rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrecopyScenario {
    /// Scenario label (bench rows, CI assertions).
    pub name: &'static str,
    /// Program to boot (one of the four evaluated servers).
    pub program: &'static str,
    /// Requests served before the update (sizes the live heap).
    pub requests: u64,
    /// Idle connections opened before the update.
    pub open_connections: usize,
    /// Connection records dirtied per process after each pre-copy round —
    /// the write rate. `usize::MAX` rewrites every record (write-heavy).
    pub writes_per_round: usize,
    /// Page-sized `doc_cache` entries re-dirtied per process after each
    /// round. Connection records are small and share pages, so this is the
    /// knob that actually spreads the per-round working set across pages:
    /// `0` models the read-mostly deployment whose startup-initialized bulk
    /// stays clean, `16` (every entry) the write-heavy one that re-dirties
    /// it continuously.
    pub cache_writes_per_round: usize,
}

/// The scenario pair: a read-mostly deployment (the common case the paper's
/// 68%–86% dirty reduction measures, where pre-copy converges and downtime
/// collapses to the tail working set) and a write-heavy one (the adversarial
/// case where every round re-dirties everything and pre-copy can only help
/// by moving the first full copy out of the window).
///
/// `vsftpd` is used for both: its process-per-connection model yields four
/// or more matched pairs, which is what the acceptance criterion requires.
pub fn precopy_scenarios() -> [PrecopyScenario; 2] {
    [
        PrecopyScenario {
            name: "read-mostly",
            program: "vsftpd",
            requests: 4,
            open_connections: 4,
            writes_per_round: 1,
            cache_writes_per_round: 0,
        },
        PrecopyScenario {
            name: "write-heavy",
            program: "vsftpd",
            requests: 4,
            open_connections: 4,
            writes_per_round: usize::MAX,
            cache_writes_per_round: 16,
        },
    ]
}

/// The write-heavy half of the workload: re-dirties the first `per_process`
/// page-sized `doc_cache` entries of every process to `stamp`. These
/// startup-initialized entries are exactly the state the paper's dirty
/// tracking normally skips (the 68%–86% reduction); a deployment that keeps
/// rewriting them forces pre-copy to re-copy a page-spread working set each
/// round.
pub fn dirty_cache_entries(
    kernel: &mut Kernel,
    instance: &McrInstance,
    per_process: usize,
    stamp: u32,
) -> usize {
    let Some(cache) = instance.state.statics.lookup("doc_cache") else {
        return 0;
    };
    let cache_addr = cache.addr;
    let slots = (cache.size / 8).min(per_process as u64);
    let mut written = 0;
    for &pid in &instance.state.processes {
        let Ok(proc) = kernel.process_mut(pid) else { continue };
        for i in 0..slots {
            let Ok(entry) = proc.space().read_u64(cache_addr.offset(i * 8)) else { continue };
            if entry == 0 {
                continue;
            }
            if proc.space_mut().write_u32(Addr(entry), stamp).is_ok() {
                written += 1;
            }
        }
    }
    written
}

/// Applies one round of a scenario's write workload (connection records
/// plus, for write-heavy scenarios, cache entries), returning the number of
/// stores issued.
pub fn apply_scenario_writes(
    kernel: &mut Kernel,
    instance: &McrInstance,
    scenario: &PrecopyScenario,
    stamp: u32,
) -> usize {
    dirty_connection_nodes(kernel, instance, scenario.writes_per_round, stamp)
        + dirty_cache_entries(kernel, instance, scenario.cache_writes_per_round, stamp)
}

/// The post-resume write workload of the adaptive-transfer sweep: stamps
/// `words` u32 slots of every process's `request_buf` scratch global with
/// `stamp`, returning the number of stores issued.
///
/// The target addresses come from the statics table, never from reads of
/// program memory — deliberately, because a post-copy instance may still
/// have not-yet-transferred pages whose *reads* return unapplied bytes. A
/// write-only workload with precomputed targets produces the same final
/// bytes whether its stores land directly (synchronous modes) or trap on a
/// parked page and are replayed by the fault handler (post-copy modes),
/// which is what lets the sweep assert byte-identical fingerprints across
/// every transfer mode.
///
/// Stamping starts at offset 8: the first word of `request_buf` is where
/// the server's type-unsafe idiom stashes a raw connection pointer, and
/// overwriting it would flip the conservative tracer's pinning decision for
/// the pointed-to node depending on *when* the stamp lands relative to a
/// trace round — exactly the cross-mode divergence this workload must not
/// introduce.
pub fn stamp_request_scratch(kernel: &mut Kernel, instance: &McrInstance, words: usize, stamp: u32) -> usize {
    let Some(buf) = instance.state.statics.lookup("request_buf") else {
        return 0;
    };
    const STASH_WORDS: u64 = 2;
    let slots = (buf.size / 4 - STASH_WORDS).min(words as u64);
    let mut written = 0;
    for &pid in &instance.state.processes {
        let Ok(proc) = kernel.process_mut(pid) else { continue };
        for i in 0..slots {
            if proc.space_mut().write_u32(buf.addr.offset((STASH_WORDS + i) * 4), stamp).is_ok() {
                written += 1;
            }
        }
    }
    written
}

/// Collects, per process of the instance, the addresses of the `conn_s`
/// nodes on the process's own copy of the global `conn_list` (every
/// generation lays the list head pointer out at offset 8 of the
/// `conn_list_s` global).
pub fn connection_nodes(kernel: &Kernel, instance: &McrInstance) -> Vec<(Pid, Vec<Addr>)> {
    let Some(list) = instance.state.statics.lookup("conn_list") else {
        return Vec::new();
    };
    let list_addr = list.addr;
    let Some(conn_ty) = instance.state.types.lookup("conn_s") else {
        return Vec::new();
    };
    let Some(next_off) = instance.state.types.field_offset(conn_ty, "next") else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for &pid in &instance.state.processes {
        let Ok(proc) = kernel.process(pid) else { continue };
        let mut nodes = Vec::new();
        let Ok(head) = proc.space().read_u64(list_addr.offset(8)) else { continue };
        let mut node = Addr(head);
        while !node.is_null() && nodes.len() < 10_000 {
            nodes.push(node);
            match proc.space().read_u64(node.offset(next_off)) {
                Ok(next) => node = Addr(next),
                Err(_) => break,
            }
        }
        if !nodes.is_empty() {
            out.push((pid, nodes));
        }
    }
    out
}

/// The write workload of the pre-copy scenarios: bumps the `state` field
/// (offset 4, stable across generations) of the first `per_process`
/// connection records of every process to `stamp`, returning how many
/// stores were issued. Stores go through the simulated address space, so
/// they dirty pages and stamp the current write epoch exactly like
/// application stores.
pub fn dirty_connection_nodes(
    kernel: &mut Kernel,
    instance: &McrInstance,
    per_process: usize,
    stamp: u32,
) -> usize {
    let nodes = connection_nodes(kernel, instance);
    let mut written = 0;
    for (pid, addrs) in nodes {
        let Ok(proc) = kernel.process_mut(pid) else { continue };
        for addr in addrs.into_iter().take(per_process) {
            if proc.space_mut().write_u32(addr.offset(4), stamp).is_ok() {
                written += 1;
            }
        }
    }
    written
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{install_standard_files, program_by_name};
    use mcr_core::runtime::{boot, BootOptions};
    use mcr_workloadless_helpers::*;

    // Minimal local driver (the servers crate must not depend on
    // mcr-workload, which depends on it).
    mod mcr_workloadless_helpers {
        use mcr_core::runtime::{run_rounds, McrInstance};
        use mcr_procsim::Kernel;

        pub fn serve(kernel: &mut Kernel, instance: &mut McrInstance, port: u16, n: usize) {
            for _ in 0..n {
                let c = kernel.client_connect(port).unwrap();
                kernel.client_send(c, b"GET /".to_vec()).unwrap();
                let _ = run_rounds(kernel, instance, 2).unwrap();
            }
        }
    }

    #[test]
    fn connection_nodes_are_found_and_dirtied() {
        let mut kernel = Kernel::new();
        install_standard_files(&mut kernel);
        let mut v1 =
            boot(&mut kernel, Box::new(program_by_name("nginx", 1)), &BootOptions::default()).unwrap();
        serve(&mut kernel, &mut v1, 8080, 3);
        let nodes = connection_nodes(&kernel, &v1);
        let total: usize = nodes.iter().map(|(_, n)| n.len()).sum();
        assert!(total >= 3, "served connections are recorded on the lists");
        for &pid in &v1.state.processes {
            kernel.process_mut(pid).unwrap().space_mut().clear_soft_dirty();
        }
        let written = dirty_connection_nodes(&mut kernel, &v1, 1, 0xBEEF);
        assert!(written >= 1 && written <= v1.state.processes.len());
        let dirty: usize = v1
            .state
            .processes
            .iter()
            .map(|&pid| kernel.process(pid).unwrap().space().dirty_page_count())
            .sum();
        assert!(dirty >= 1, "the write workload stamps pages dirty");
    }

    #[test]
    fn scenario_pair_covers_both_write_rates() {
        let [read_mostly, write_heavy] = precopy_scenarios();
        assert_eq!(read_mostly.program, write_heavy.program, "same server, different write rate");
        assert!(read_mostly.writes_per_round < write_heavy.writes_per_round);
    }
}
