//! Client-side workload drivers.
//!
//! These model the benchmarks the paper uses: the Apache benchmark (AB)
//! issuing HTTP requests for a small file, the pyftpdlib FTP benchmark
//! retrieving a large file over many user connections, and the OpenSSH
//! regression suite opening authenticated sessions.
//!
//! The drivers are *event-driven*: each client action (`client_connect`,
//! `client_send`, `client_close`) pushes wakeups onto the kernel's wake
//! queue, and the driver then lets the server's scheduler run until it is
//! idle again ([`settle`]). Only the threads those events made ready
//! actually execute, so a driver round costs O(active connections) even
//! against a fleet of mostly-idle sessions. Arrivals are *open-loop*: with
//! [`WorkloadSpec::interarrival_ns`] set, the driver advances the virtual
//! clock between requests (firing any timer-wheel entries the advance
//! passes over) instead of waiting for the previous response — the
//! constant-rate regime the paper's AB runs model. Both wall-clock time
//! (for overhead ratios) and simulated time are measured.

use std::time::{Duration, Instant};

use mcr_core::runtime::{run_round, McrInstance, RoundStats};
use mcr_core::McrResult;
use mcr_procsim::{ConnId, Kernel, SimDuration};

/// Description of one client workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// Workload name (for reports).
    pub name: String,
    /// Server port to connect to.
    pub port: u16,
    /// Number of requests to issue.
    pub requests: u64,
    /// Request payload sent per connection.
    pub request: Vec<u8>,
    /// Whether the client closes the connection after the response
    /// (AB-style) or keeps it open (long-lived FTP/SSH sessions).
    pub close_after_response: bool,
    /// Number of long-lived idle connections opened before the measured
    /// requests (the execution-stalling part of the profiling workload).
    pub idle_connections: usize,
    /// Simulated nanoseconds between request arrivals. `0` issues requests
    /// back-to-back; a positive value drives an open-loop arrival process
    /// through the kernel clock (and timer wheel).
    pub interarrival_ns: u64,
}

impl WorkloadSpec {
    /// The Apache-benchmark-style HTTP workload (100k requests of a 1 KB
    /// file in the paper; the count is a parameter here).
    pub fn apache_bench(port: u16, requests: u64) -> Self {
        WorkloadSpec {
            name: "ab".into(),
            port,
            requests,
            request: b"GET /index.html HTTP/1.0\r\nHost: localhost\r\n\r\n".to_vec(),
            close_after_response: true,
            idle_connections: 4,
            interarrival_ns: 0,
        }
    }

    /// The pyftpdlib-style FTP workload (100 users retrieving a 1 MB file).
    pub fn ftp_bench(port: u16, requests: u64) -> Self {
        WorkloadSpec {
            name: "pyftpdlib".into(),
            port,
            requests,
            request: b"USER anonymous\r\nPASS guest\r\nRETR /var/ftp/large.bin\r\n".to_vec(),
            close_after_response: false,
            idle_connections: 4,
            interarrival_ns: 0,
        }
    }

    /// The OpenSSH-test-suite-style workload (authenticated sessions
    /// exchanging channel data).
    pub fn ssh_suite(port: u16, requests: u64) -> Self {
        WorkloadSpec {
            name: "ssh-suite".into(),
            port,
            requests,
            request: b"SSH-2.0-OpenSSH_3.5 key-exchange channel-open".to_vec(),
            close_after_response: false,
            idle_connections: 2,
            interarrival_ns: 0,
        }
    }

    /// Spaces request arrivals `ns` simulated nanoseconds apart (open-loop
    /// constant-rate arrivals).
    #[must_use]
    pub fn with_interarrival(mut self, ns: u64) -> Self {
        self.interarrival_ns = ns;
        self
    }
}

/// The outcome of one workload run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkloadResult {
    /// Requests that received a response.
    pub completed: u64,
    /// Requests that received no response within the round budget.
    pub unanswered: u64,
    /// Wall-clock time spent driving the workload (includes all simulator and
    /// MCR instrumentation work, which is what Table 3 compares).
    pub wall_time: Duration,
    /// Simulated time elapsed.
    pub sim_time: SimDuration,
    /// Connections left open at the end of the run.
    pub open_connections: Vec<ConnId>,
    /// Accumulated scheduler statistics of the run (steps executed, threads
    /// woken by events).
    pub sched: RoundStats,
}

impl WorkloadResult {
    /// Requests per wall-clock second (throughput proxy).
    pub fn requests_per_second(&self) -> f64 {
        let secs = self.wall_time.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.completed as f64 / secs
        }
    }
}

/// Scheduling rounds the driver grants the server to answer one request
/// before counting it unanswered. On the event-driven path a single round
/// runs the instance to idle; the margin keeps the full-scan ablation (which
/// may need one round per pipeline stage) working on the same driver.
const RESPONSE_ROUNDS: usize = 4;

/// Lets the server's scheduler drain whatever the latest client events made
/// ready, accumulating statistics into `total`.
///
/// # Errors
///
/// Propagates server-side errors.
fn settle(kernel: &mut Kernel, instance: &mut McrInstance, total: &mut RoundStats) -> McrResult<()> {
    total.absorb(&run_round(kernel, instance)?);
    Ok(())
}

/// Opens `n` idle connections to `port` without sending any request (the
/// long-lived connections of the profiling workload and of the Figure 3
/// experiment). The server accepts them as the connect events wake its
/// acceptors.
///
/// # Errors
///
/// Fails if the port has no listener.
pub fn open_idle_connections(
    kernel: &mut Kernel,
    instance: &mut McrInstance,
    port: u16,
    n: usize,
) -> McrResult<Vec<ConnId>> {
    let mut conns = Vec::with_capacity(n);
    for _ in 0..n {
        let c = kernel.client_connect(port).map_err(mcr_core::McrError::Sim)?;
        kernel.client_send(c, b"KEEPALIVE".to_vec()).map_err(mcr_core::McrError::Sim)?;
        conns.push(c);
    }
    // Let the server accept them all (the margin covers the full-scan
    // ablation, which accepts at most one connection per acceptor round).
    let mut stats = RoundStats::default();
    for _ in 0..(n + 2) {
        settle(kernel, instance, &mut stats)?;
    }
    Ok(conns)
}

/// Builds a pre-copy round hook
/// ([`PrecopyHook`](mcr_core::runtime::PrecopyHook)) that keeps the old
/// instance serving while a live update's pre-copy rounds are in flight:
/// after every concurrent copy round it issues `per_round` fresh requests
/// from `spec` and lets the (still live) old version answer them. This is
/// the client-visible half of the pre-copy story — traffic served during
/// rounds would have been queued behind the stop-the-world window without
/// pre-copy.
pub fn precopy_serving_hook(spec: &WorkloadSpec, per_round: u64) -> mcr_core::runtime::PrecopyHook {
    let spec = spec.clone();
    Box::new(move |kernel: &mut Kernel, old: &mut McrInstance, _round: usize| {
        for _ in 0..per_round {
            let Ok(conn) = kernel.client_connect(spec.port) else { continue };
            let _ = kernel.client_send(conn, spec.request.clone());
            let _ = run_round(kernel, old);
            let _ = kernel.client_recv(conn);
            if spec.close_after_response {
                let _ = kernel.client_close(conn);
            }
        }
    })
}

/// Runs a workload against a booted server instance.
///
/// # Errors
///
/// Propagates server-side errors; client-side connect failures count as
/// unanswered requests.
pub fn run_workload(
    kernel: &mut Kernel,
    instance: &mut McrInstance,
    spec: &WorkloadSpec,
) -> McrResult<WorkloadResult> {
    let mut result = WorkloadResult::default();
    let wall_start = Instant::now();
    let sim_start = kernel.now();

    result.open_connections = open_idle_connections(kernel, instance, spec.port, spec.idle_connections)?;

    for _ in 0..spec.requests {
        if spec.interarrival_ns > 0 {
            // Open-loop arrivals: the clock advance itself can fire
            // timer-wheel wakeups, which the next settle pass drains.
            kernel.advance_clock(SimDuration(spec.interarrival_ns));
        }
        let Ok(conn) = kernel.client_connect(spec.port) else {
            result.unanswered += 1;
            continue;
        };
        kernel.client_send(conn, spec.request.clone()).map_err(mcr_core::McrError::Sim)?;
        let mut answered = false;
        for _ in 0..RESPONSE_ROUNDS {
            settle(kernel, instance, &mut result.sched)?;
            if let Some(_reply) = kernel.client_recv(conn) {
                answered = true;
                break;
            }
        }
        if answered {
            result.completed += 1;
        } else {
            result.unanswered += 1;
        }
        if spec.close_after_response {
            kernel.client_close(conn).map_err(mcr_core::McrError::Sim)?;
        } else {
            result.open_connections.push(conn);
        }
    }

    result.wall_time = wall_start.elapsed();
    result.sim_time = kernel.now().duration_since(sim_start);
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcr_core::runtime::{boot, BootOptions};
    use mcr_servers::{install_standard_files, programs};

    #[test]
    fn apache_bench_completes_against_nginx() {
        let mut kernel = Kernel::new();
        install_standard_files(&mut kernel);
        let mut instance = boot(&mut kernel, Box::new(programs::nginx(1)), &BootOptions::default()).unwrap();
        let spec = WorkloadSpec::apache_bench(8080, 20);
        let result = run_workload(&mut kernel, &mut instance, &spec).unwrap();
        assert_eq!(result.completed, 20);
        assert_eq!(result.unanswered, 0);
        assert!(result.sim_time.0 > 0);
        assert!(result.requests_per_second() > 0.0);
        assert!(result.sched.woken > 0, "requests were served via event wakeups");
        // AB closes its measured connections; the idle ones stay open.
        assert_eq!(result.open_connections.len(), spec.idle_connections);
    }

    #[test]
    fn ftp_bench_keeps_sessions_open() {
        let mut kernel = Kernel::new();
        install_standard_files(&mut kernel);
        let mut instance = boot(&mut kernel, Box::new(programs::vsftpd(1)), &BootOptions::default()).unwrap();
        let spec = WorkloadSpec::ftp_bench(21, 5);
        let result = run_workload(&mut kernel, &mut instance, &spec).unwrap();
        assert_eq!(result.completed, 5);
        assert_eq!(result.open_connections.len(), spec.idle_connections + 5);
        // One session process per accepted connection.
        assert!(instance.state.processes.len() > 1);
    }

    #[test]
    fn idle_connections_are_accepted() {
        let mut kernel = Kernel::new();
        install_standard_files(&mut kernel);
        let mut instance = boot(&mut kernel, Box::new(programs::sshd(1)), &BootOptions::default()).unwrap();
        let conns = open_idle_connections(&mut kernel, &mut instance, 22, 6).unwrap();
        assert_eq!(conns.len(), 6);
        assert!(conns.iter().all(|&c| kernel.client_is_accepted(c)));
        assert_eq!(kernel.open_connection_count(), 6);
    }

    #[test]
    fn open_loop_arrivals_advance_the_virtual_clock() {
        let mut kernel = Kernel::new();
        install_standard_files(&mut kernel);
        let mut instance = boot(&mut kernel, Box::new(programs::nginx(1)), &BootOptions::default()).unwrap();
        let gap = 1_000_000u64; // 1 ms between arrivals
        let spec = WorkloadSpec::apache_bench(8080, 10).with_interarrival(gap);
        let result = run_workload(&mut kernel, &mut instance, &spec).unwrap();
        assert_eq!(result.completed, 10);
        assert!(
            result.sim_time.0 >= 10 * gap,
            "open-loop pacing advanced simulated time by at least the arrival gaps"
        );
    }
}
