//! Allocator-stress microbenchmarks (the SPEC CPU2006-style experiment).
//!
//! The paper measures the cost of MCR's allocator instrumentation by
//! instrumenting all SPEC CPU2006 benchmarks and reports a 5% worst case
//! except for the allocation-intensive `perlbench` (36%). These synthetic
//! workloads reproduce that experiment's shape: a set of benchmarks with
//! different allocation intensities run against the simulated ptmalloc with
//! and without in-band MCR tags.

use std::time::{Duration, Instant};

use mcr_procsim::{Addr, AddressSpace, AllocSite, PtMalloc, RegionKind, TypeTag, PAGE_SIZE};

/// One synthetic allocator benchmark.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocBenchSpec {
    /// Benchmark name (mirrors a SPEC constituent).
    pub name: String,
    /// Number of allocate/compute/free iterations.
    pub operations: u64,
    /// Object size in bytes.
    pub object_size: u64,
    /// Number of objects kept live simultaneously.
    pub live_set: usize,
    /// Amount of non-allocator "compute" work (word writes) per operation —
    /// the higher this is, the smaller the relative allocator overhead.
    pub compute_per_op: u64,
}

impl AllocBenchSpec {
    /// The SPEC-like suite: mostly compute-bound benchmarks plus the
    /// allocation-intensive `perlbench`-like stress case.
    pub fn spec_suite(scale: u64) -> Vec<AllocBenchSpec> {
        vec![
            AllocBenchSpec {
                name: "bzip2-like".into(),
                operations: 200 * scale,
                object_size: 4096,
                live_set: 8,
                compute_per_op: 512,
            },
            AllocBenchSpec {
                name: "gcc-like".into(),
                operations: 400 * scale,
                object_size: 256,
                live_set: 64,
                compute_per_op: 128,
            },
            AllocBenchSpec {
                name: "mcf-like".into(),
                operations: 300 * scale,
                object_size: 64,
                live_set: 128,
                compute_per_op: 96,
            },
            AllocBenchSpec {
                name: "gobmk-like".into(),
                operations: 300 * scale,
                object_size: 128,
                live_set: 32,
                compute_per_op: 160,
            },
            AllocBenchSpec {
                name: "perlbench-like".into(),
                operations: 2_000 * scale,
                object_size: 48,
                live_set: 256,
                compute_per_op: 4,
            },
        ]
    }
}

/// Result of one allocator benchmark run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocBenchResult {
    /// Benchmark name.
    pub name: String,
    /// Whether the allocator maintained MCR tags.
    pub instrumented: bool,
    /// Wall-clock time of the run.
    pub wall_time: Duration,
    /// Allocations performed.
    pub allocations: u64,
}

/// Runs one allocator benchmark against a fresh simulated heap.
pub fn run_alloc_bench(spec: &AllocBenchSpec, instrumented: bool) -> AllocBenchResult {
    const HEAP_BASE: u64 = 0x2000_0000;
    let heap_size = 4096 * PAGE_SIZE;
    let mut space = AddressSpace::new();
    space
        .map_region(Addr(HEAP_BASE), heap_size, RegionKind::Heap, "bench-heap")
        .expect("fresh address space");
    let mut heap = PtMalloc::new(Addr(HEAP_BASE), heap_size, instrumented);
    heap.end_startup();

    let mut live: Vec<Addr> = Vec::with_capacity(spec.live_set);
    let mut allocations = 0u64;
    let start = Instant::now();
    for op in 0..spec.operations {
        if live.len() >= spec.live_set {
            let victim = live.remove((op % spec.live_set as u64) as usize);
            heap.free(&mut space, victim).expect("live chunk");
        }
        let addr = heap
            .malloc(&mut space, spec.object_size, AllocSite(op % 16 + 1), TypeTag(op % 8 + 1))
            .expect("heap large enough");
        allocations += 1;
        // "Compute": touch the object and spin on word writes.
        let words = (spec.compute_per_op / 8).max(1).min(spec.object_size / 8);
        for w in 0..words {
            space.write_u64(addr.offset(w * 8), op ^ w).expect("in bounds");
        }
        live.push(addr);
    }
    AllocBenchResult { name: spec.name.clone(), instrumented, wall_time: start.elapsed(), allocations }
}

/// Overhead ratio of the instrumented run over the baseline run of the same
/// benchmark (1.0 means no overhead).
pub fn overhead_ratio(baseline: &AllocBenchResult, instrumented: &AllocBenchResult) -> f64 {
    let base = baseline.wall_time.as_secs_f64();
    if base <= 0.0 {
        1.0
    } else {
        instrumented.wall_time.as_secs_f64() / base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_contains_perlbench_stress_case() {
        let suite = AllocBenchSpec::spec_suite(1);
        assert_eq!(suite.len(), 5);
        let perl = suite.iter().find(|s| s.name.starts_with("perlbench")).unwrap();
        let others_max_ops =
            suite.iter().filter(|s| !s.name.starts_with("perlbench")).map(|s| s.operations).max().unwrap();
        assert!(perl.operations > others_max_ops, "perlbench is allocation-intensive");
        assert!(perl.compute_per_op < 16);
    }

    #[test]
    fn benchmarks_run_and_allocate() {
        let spec = AllocBenchSpec {
            name: "smoke".into(),
            operations: 500,
            object_size: 64,
            live_set: 16,
            compute_per_op: 32,
        };
        let base = run_alloc_bench(&spec, false);
        let instr = run_alloc_bench(&spec, true);
        assert_eq!(base.allocations, 500);
        assert_eq!(instr.allocations, 500);
        assert!(!base.instrumented && instr.instrumented);
        let ratio = overhead_ratio(&base, &instr);
        assert!(ratio > 0.0);
    }
}
