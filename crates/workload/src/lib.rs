//! # mcr-workload — benchmark workloads for the MCR evaluation
//!
//! Client-side drivers reproducing the paper's benchmarks: an Apache-bench
//! style HTTP load, a pyftpdlib-style FTP load, an OpenSSH-test-suite style
//! session load, and the SPEC-like allocator microbenchmarks used to isolate
//! the cost of allocator instrumentation.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod allocbench;
pub mod driver;

pub use allocbench::{overhead_ratio, run_alloc_bench, AllocBenchResult, AllocBenchSpec};
pub use driver::{open_idle_connections, precopy_serving_hook, run_workload, WorkloadResult, WorkloadSpec};

/// The standard workload for a program name, sized by `requests`.
///
/// # Panics
///
/// Panics on an unknown program name.
pub fn workload_for(program: &str, requests: u64) -> WorkloadSpec {
    match program {
        "httpd" => WorkloadSpec::apache_bench(80, requests),
        "nginx" => WorkloadSpec::apache_bench(8080, requests),
        "vsftpd" => WorkloadSpec::ftp_bench(21, requests),
        "sshd" => WorkloadSpec::ssh_suite(22, requests),
        // The memcached-style slab cache: every request inserts one entry.
        "cache" => WorkloadSpec {
            name: "memslap".into(),
            port: 11211,
            requests,
            request: b"set 96".to_vec(),
            close_after_response: true,
            idle_connections: 2,
            interarrival_ns: 0,
        },
        other => panic!("unknown program {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_match_programs() {
        assert_eq!(workload_for("httpd", 10).port, 80);
        assert_eq!(workload_for("nginx", 10).port, 8080);
        assert!(!workload_for("vsftpd", 10).close_after_response);
        assert_eq!(workload_for("sshd", 10).requests, 10);
    }
}
