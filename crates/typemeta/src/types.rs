//! Data-type descriptors and layout computation.
//!
//! The original MCR obtains type information from an LLVM link-time pass and
//! stores it as in-memory *data type tags*. Here the same information is
//! described explicitly with [`TypeDesc`] values held in a [`TypeRegistry`].
//! Every simulated program version registers the types of its global
//! variables and heap allocations; the registry is what MCR's precise tracing
//! consults to locate pointers, and what the transfer engine diffs across
//! versions to compute type transformations.
//!
//! Types that C cannot describe unambiguously — unions, `char` buffers,
//! pointer-sized integers, and allocations from uninstrumented allocators —
//! are modelled as *opaque* layout elements, which is precisely what forces
//! the conservative half of mutable tracing.

use std::collections::BTreeMap;
use std::sync::Arc;

/// Identifier of a type within a [`TypeRegistry`].
///
/// The numeric value doubles as the in-band allocator tag
/// ([`mcr_procsim::TypeTag`]) so that chunk headers written by the simulated
/// allocator can be resolved back to a descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TypeId(pub u64);

/// Structural description of a type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeKind {
    /// A plain integer of the given byte width (1, 2, 4 or 8) that never
    /// holds a pointer.
    Int {
        /// Width in bytes.
        size: u64,
    },
    /// A pointer-sized integer that *may* hold a pointer (e.g. `intptr_t`,
    /// encoded pointers). Treated as opaque by precise tracing.
    PtrSizedInt,
    /// A pointer to an object of the given type.
    Pointer {
        /// Pointee type.
        to: TypeId,
    },
    /// A fixed-size `char` buffer; opaque (may hide pointers, Listing 1's
    /// `char b[8]`).
    CharArray {
        /// Length in bytes.
        len: u64,
    },
    /// An array of `len` elements of a known type.
    Array {
        /// Element type.
        elem: TypeId,
        /// Element count.
        len: u64,
    },
    /// A struct with named fields laid out with natural alignment.
    Struct {
        /// Fields in declaration order.
        fields: Vec<Field>,
    },
    /// A union of variants; opaque to precise tracing.
    Union {
        /// The variants sharing the storage.
        variants: Vec<Field>,
    },
    /// A blob with unknown layout (uninstrumented library data, custom
    /// allocator internals).
    Opaque {
        /// Size in bytes.
        size: u64,
    },
}

/// A named member of a struct or union.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Field name (used to match fields across versions).
    pub name: String,
    /// Field type.
    pub ty: TypeId,
}

impl Field {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, ty: TypeId) -> Self {
        Field { name: name.into(), ty }
    }
}

/// A registered type: identifier, name and structure.
///
/// The name is interned as an `Arc<str>` so the transfer engine's hot path
/// can carry type names around without copying the bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeDesc {
    /// Identifier within the registry.
    pub id: TypeId,
    /// Type name (used to pair types across program versions).
    pub name: Arc<str>,
    /// Structure.
    pub kind: TypeKind,
}

/// One element of a type's flattened layout, as consumed by mutable tracing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutElement {
    /// A pointer slot at `offset`, pointing to an object of type `to`.
    Pointer {
        /// Byte offset from the start of the object.
        offset: u64,
        /// Pointee type.
        to: TypeId,
    },
    /// Plain (pointer-free) data that can be copied verbatim.
    Scalar {
        /// Byte offset from the start of the object.
        offset: u64,
        /// Length in bytes.
        len: u64,
    },
    /// Opaque bytes that may hide pointers; must be scanned conservatively.
    Opaque {
        /// Byte offset from the start of the object.
        offset: u64,
        /// Length in bytes.
        len: u64,
    },
}

impl LayoutElement {
    /// Byte offset of the element.
    pub fn offset(&self) -> u64 {
        match self {
            LayoutElement::Pointer { offset, .. }
            | LayoutElement::Scalar { offset, .. }
            | LayoutElement::Opaque { offset, .. } => *offset,
        }
    }
}

/// Field location resolved within a struct layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldLayout {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: TypeId,
    /// Byte offset from the start of the struct.
    pub offset: u64,
    /// Field size in bytes.
    pub size: u64,
}

/// Registry of every type known to one program version.
#[derive(Debug, Clone, Default)]
pub struct TypeRegistry {
    types: BTreeMap<u64, TypeDesc>,
    by_name: BTreeMap<Arc<str>, u64>,
    next_id: u64,
}

impl TypeRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        TypeRegistry { types: BTreeMap::new(), by_name: BTreeMap::new(), next_id: 1 }
    }

    /// Registers a type under `name`, returning its id. Registering the same
    /// name twice returns the existing id (types are identified by name
    /// within one version).
    pub fn register(&mut self, name: impl Into<Arc<str>>, kind: TypeKind) -> TypeId {
        let name: Arc<str> = name.into();
        if let Some(&id) = self.by_name.get(&name) {
            return TypeId(id);
        }
        let id = TypeId(self.next_id);
        self.next_id += 1;
        self.by_name.insert(Arc::clone(&name), id.0);
        self.types.insert(id.0, TypeDesc { id, name, kind });
        id
    }

    /// Shorthand: a non-pointer integer type.
    pub fn int(&mut self, name: &str, size: u64) -> TypeId {
        self.register(name, TypeKind::Int { size })
    }

    /// Shorthand: a pointer-sized integer (opaque).
    pub fn ptr_sized_int(&mut self, name: &str) -> TypeId {
        self.register(name, TypeKind::PtrSizedInt)
    }

    /// Shorthand: a pointer type.
    pub fn pointer(&mut self, name: &str, to: TypeId) -> TypeId {
        self.register(name, TypeKind::Pointer { to })
    }

    /// Shorthand: a `char[len]` buffer.
    pub fn char_array(&mut self, name: &str, len: u64) -> TypeId {
        self.register(name, TypeKind::CharArray { len })
    }

    /// Shorthand: an array type.
    pub fn array(&mut self, name: &str, elem: TypeId, len: u64) -> TypeId {
        self.register(name, TypeKind::Array { elem, len })
    }

    /// Shorthand: a struct type.
    pub fn struct_type(&mut self, name: &str, fields: Vec<Field>) -> TypeId {
        self.register(name, TypeKind::Struct { fields })
    }

    /// Shorthand: a union type.
    pub fn union_type(&mut self, name: &str, variants: Vec<Field>) -> TypeId {
        self.register(name, TypeKind::Union { variants })
    }

    /// Shorthand: an opaque blob.
    pub fn opaque(&mut self, name: &str, size: u64) -> TypeId {
        self.register(name, TypeKind::Opaque { size })
    }

    /// Looks up a type descriptor by id.
    pub fn get(&self, id: TypeId) -> Option<&TypeDesc> {
        self.types.get(&id.0)
    }

    /// Looks up a type id by name.
    pub fn lookup(&self, name: &str) -> Option<TypeId> {
        self.by_name.get(name).map(|&id| TypeId(id))
    }

    /// Iterates over all registered types.
    pub fn iter(&self) -> impl Iterator<Item = &TypeDesc> {
        self.types.values()
    }

    /// Number of registered types.
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// True if no types are registered.
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }

    /// Size of an object of type `id`, in bytes.
    ///
    /// Unknown ids have size 0 (they behave like opaque, untraceable blobs).
    pub fn size_of(&self, id: TypeId) -> u64 {
        match self.get(id).map(|d| &d.kind) {
            Some(TypeKind::Int { size }) => *size,
            Some(TypeKind::PtrSizedInt) | Some(TypeKind::Pointer { .. }) => 8,
            Some(TypeKind::CharArray { len }) => *len,
            Some(TypeKind::Array { elem, len }) => self.stride_of(*elem) * len,
            Some(TypeKind::Struct { fields }) => {
                let layout = self.struct_layout_inner(fields);
                layout.1
            }
            Some(TypeKind::Union { variants }) => {
                variants.iter().map(|f| self.size_of(f.ty)).max().unwrap_or(0)
            }
            Some(TypeKind::Opaque { size }) => *size,
            None => 0,
        }
    }

    /// Alignment of a type, in bytes.
    pub fn align_of(&self, id: TypeId) -> u64 {
        match self.get(id).map(|d| &d.kind) {
            Some(TypeKind::Int { size }) => (*size).max(1),
            Some(TypeKind::PtrSizedInt) | Some(TypeKind::Pointer { .. }) => 8,
            Some(TypeKind::CharArray { .. }) => 1,
            Some(TypeKind::Array { elem, .. }) => self.align_of(*elem),
            Some(TypeKind::Struct { fields }) => {
                fields.iter().map(|f| self.align_of(f.ty)).max().unwrap_or(1)
            }
            Some(TypeKind::Union { variants }) => {
                variants.iter().map(|f| self.align_of(f.ty)).max().unwrap_or(1)
            }
            Some(TypeKind::Opaque { .. }) => 8,
            None => 1,
        }
    }

    fn stride_of(&self, id: TypeId) -> u64 {
        let size = self.size_of(id);
        let align = self.align_of(id);
        size.div_ceil(align) * align
    }

    fn struct_layout_inner(&self, fields: &[Field]) -> (Vec<FieldLayout>, u64) {
        let mut out = Vec::with_capacity(fields.len());
        let mut offset = 0u64;
        let mut max_align = 1u64;
        for f in fields {
            let align = self.align_of(f.ty);
            let size = self.size_of(f.ty);
            max_align = max_align.max(align);
            offset = offset.div_ceil(align) * align;
            out.push(FieldLayout { name: f.name.clone(), ty: f.ty, offset, size });
            offset += size;
        }
        let total = offset.div_ceil(max_align) * max_align;
        (out, total.max(1))
    }

    /// The field layout of a struct type.
    ///
    /// Returns an empty vector for non-struct types.
    pub fn struct_layout(&self, id: TypeId) -> Vec<FieldLayout> {
        match self.get(id).map(|d| &d.kind) {
            Some(TypeKind::Struct { fields }) => self.struct_layout_inner(fields).0,
            _ => Vec::new(),
        }
    }

    /// Byte offset of a named field within a struct type.
    pub fn field_offset(&self, id: TypeId, field: &str) -> Option<u64> {
        self.struct_layout(id).into_iter().find(|f| f.name == field).map(|f| f.offset)
    }

    /// Flattens a type into its traced layout: pointer slots, scalar runs and
    /// opaque runs, in offset order. This is the unit of work of precise
    /// tracing: pointer slots are followed, scalars copied, opaque runs handed
    /// to the conservative scanner.
    pub fn layout_elements(&self, id: TypeId) -> Vec<LayoutElement> {
        let mut out = Vec::new();
        self.flatten(id, 0, &mut out);
        out
    }

    fn flatten(&self, id: TypeId, base: u64, out: &mut Vec<LayoutElement>) {
        match self.get(id).map(|d| d.kind.clone()) {
            Some(TypeKind::Int { size }) => out.push(LayoutElement::Scalar { offset: base, len: size }),
            Some(TypeKind::PtrSizedInt) => out.push(LayoutElement::Opaque { offset: base, len: 8 }),
            Some(TypeKind::Pointer { to }) => out.push(LayoutElement::Pointer { offset: base, to }),
            Some(TypeKind::CharArray { len }) => out.push(LayoutElement::Opaque { offset: base, len }),
            Some(TypeKind::Array { elem, len }) => {
                let stride = self.stride_of(elem);
                for i in 0..len {
                    self.flatten(elem, base + i * stride, out);
                }
            }
            Some(TypeKind::Struct { fields }) => {
                for f in self.struct_layout_inner(&fields).0 {
                    self.flatten(f.ty, base + f.offset, out);
                }
            }
            Some(TypeKind::Union { variants }) => {
                let size = variants.iter().map(|f| self.size_of(f.ty)).max().unwrap_or(0);
                out.push(LayoutElement::Opaque { offset: base, len: size });
            }
            Some(TypeKind::Opaque { size }) => out.push(LayoutElement::Opaque { offset: base, len: size }),
            None => {}
        }
    }

    /// True if the type contains any opaque layout element (and therefore
    /// requires conservative scanning when traced).
    pub fn has_opaque_parts(&self, id: TypeId) -> bool {
        self.layout_elements(id).iter().any(|e| matches!(e, LayoutElement::Opaque { .. }))
    }

    /// True if the type contains any pointer slot.
    pub fn has_pointers(&self, id: TypeId) -> bool {
        self.layout_elements(id).iter().any(|e| matches!(e, LayoutElement::Pointer { .. }))
    }

    /// Structural comparison of a type in this registry against a type in
    /// another registry (typically: old version vs. new version).
    ///
    /// Two types are *layout-compatible* when their flattened layouts have the
    /// same element kinds, offsets and sizes, and the names of struct fields
    /// match pairwise. Pointee type *names* must match but pointee ids may
    /// differ (ids are version-local).
    pub fn is_layout_compatible(&self, id: TypeId, other: &TypeRegistry, other_id: TypeId) -> bool {
        let a = self.layout_elements(id);
        let b = other.layout_elements(other_id);
        if a.len() != b.len() {
            return false;
        }
        a.iter().zip(b.iter()).all(|(x, y)| match (x, y) {
            (
                LayoutElement::Scalar { offset: o1, len: l1 },
                LayoutElement::Scalar { offset: o2, len: l2 },
            ) => o1 == o2 && l1 == l2,
            (
                LayoutElement::Opaque { offset: o1, len: l1 },
                LayoutElement::Opaque { offset: o2, len: l2 },
            ) => o1 == o2 && l1 == l2,
            (
                LayoutElement::Pointer { offset: o1, to: t1 },
                LayoutElement::Pointer { offset: o2, to: t2 },
            ) => {
                o1 == o2
                    && match (self.get(*t1), other.get(*t2)) {
                        (Some(a), Some(b)) => a.name == b.name,
                        _ => false,
                    }
            }
            _ => false,
        }) && self.size_of(id) == other.size_of(other_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn listing1_types() -> (TypeRegistry, TypeId, TypeId) {
        // The types from Listing 1 of the paper: `char b[8]` and
        // `struct list_s { int value; struct list_s *next; }`.
        let mut reg = TypeRegistry::new();
        let int = reg.int("int", 4);
        let list = reg.register(
            "l_t",
            TypeKind::Struct { fields: vec![Field::new("value", int), Field::new("next", TypeId(0))] },
        );
        // Patch the self-referential pointer after the struct id exists.
        let list_ptr = reg.pointer("l_t*", list);
        if let Some(desc) = reg.types.get_mut(&list.0) {
            if let TypeKind::Struct { fields } = &mut desc.kind {
                fields[1].ty = list_ptr;
            }
        }
        let b = reg.char_array("char[8]", 8);
        (reg, list, b)
    }

    #[test]
    fn primitive_sizes_and_alignment() {
        let mut reg = TypeRegistry::new();
        let i32t = reg.int("int", 4);
        let p = reg.pointer("int*", i32t);
        let c = reg.char_array("char[13]", 13);
        assert_eq!(reg.size_of(i32t), 4);
        assert_eq!(reg.size_of(p), 8);
        assert_eq!(reg.align_of(p), 8);
        assert_eq!(reg.size_of(c), 13);
        assert_eq!(reg.align_of(c), 1);
    }

    #[test]
    fn struct_layout_with_padding() {
        let (reg, list, _) = listing1_types();
        // int value at 0, pointer next aligned to 8, total 16.
        let layout = reg.struct_layout(list);
        assert_eq!(layout.len(), 2);
        assert_eq!(layout[0].offset, 0);
        assert_eq!(layout[1].offset, 8);
        assert_eq!(reg.size_of(list), 16);
        assert_eq!(reg.field_offset(list, "next"), Some(8));
        assert_eq!(reg.field_offset(list, "missing"), None);
    }

    #[test]
    fn layout_elements_classify_pointer_scalar_opaque() {
        let (reg, list, b) = listing1_types();
        let elems = reg.layout_elements(list);
        assert!(matches!(elems[0], LayoutElement::Scalar { offset: 0, len: 4 }));
        assert!(matches!(elems[1], LayoutElement::Pointer { offset: 8, .. }));
        assert!(reg.has_pointers(list));
        assert!(!reg.has_opaque_parts(list));

        let belems = reg.layout_elements(b);
        assert_eq!(belems.len(), 1);
        assert!(matches!(belems[0], LayoutElement::Opaque { offset: 0, len: 8 }));
        assert!(reg.has_opaque_parts(b));
    }

    #[test]
    fn arrays_flatten_per_element() {
        let mut reg = TypeRegistry::new();
        let int = reg.int("int", 4);
        let pair = reg.struct_type("pair", vec![Field::new("a", int), Field::new("b", int)]);
        let arr = reg.array("pair[3]", pair, 3);
        assert_eq!(reg.size_of(arr), 24);
        let elems = reg.layout_elements(arr);
        assert_eq!(elems.len(), 6);
        assert_eq!(elems[5].offset(), 20);
    }

    #[test]
    fn unions_and_ptr_sized_ints_are_opaque() {
        let mut reg = TypeRegistry::new();
        let int = reg.int("int", 4);
        let ptr = reg.pointer("int*", int);
        let u = reg.union_type("u", vec![Field::new("i", int), Field::new("p", ptr)]);
        let elems = reg.layout_elements(u);
        assert_eq!(elems, vec![LayoutElement::Opaque { offset: 0, len: 8 }]);
        let psi = reg.ptr_sized_int("uintptr_t");
        assert!(reg.has_opaque_parts(psi));
    }

    #[test]
    fn duplicate_registration_returns_same_id() {
        let mut reg = TypeRegistry::new();
        let a = reg.int("int", 4);
        let b = reg.int("int", 4);
        assert_eq!(a, b);
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.lookup("int"), Some(a));
    }

    #[test]
    fn layout_compatibility_across_registries() {
        let (reg_v1, list_v1, _) = listing1_types();
        // v2 with an identical list type.
        let (reg_v2, list_v2, _) = listing1_types();
        assert!(reg_v1.is_layout_compatible(list_v1, &reg_v2, list_v2));

        // v2 with an extra field (the `new` field of Figure 2) is not
        // layout-compatible and therefore needs a type transformation.
        let mut reg_v2b = TypeRegistry::new();
        let int = reg_v2b.int("int", 4);
        let list2 = reg_v2b.register(
            "l_t",
            TypeKind::Struct {
                fields: vec![Field::new("value", int), Field::new("new", int), Field::new("next", TypeId(0))],
            },
        );
        let lp = reg_v2b.pointer("l_t*", list2);
        if let Some(d) = reg_v2b.types.get_mut(&list2.0) {
            if let TypeKind::Struct { fields } = &mut d.kind {
                fields[2].ty = lp;
            }
        }
        assert!(!reg_v1.is_layout_compatible(list_v1, &reg_v2b, list2));
    }

    #[test]
    fn unknown_type_behaves_as_empty() {
        let reg = TypeRegistry::new();
        assert_eq!(reg.size_of(TypeId(99)), 0);
        assert!(reg.layout_elements(TypeId(99)).is_empty());
    }
}
