//! # mcr-typemeta — type and instrumentation metadata for MCR
//!
//! The original MCR obtains program metadata from an LLVM link-time pass
//! (data-type tags, relocation tags, allocation-site analysis) and from a
//! dynamic preload library (shared-library tracking). This crate provides the
//! same metadata for the simulated programs of this reproduction:
//!
//! * [`TypeRegistry`] / [`TypeDesc`] — structural type descriptors with layout
//!   computation, flattening into pointer / scalar / opaque runs, and
//!   cross-version compatibility checks;
//! * [`StaticRegistry`] — the static-object (symbol) registry of one program
//!   version;
//! * [`CallSiteRegistry`] — allocation-site information used to type heap
//!   chunks and match dynamic objects across versions;
//! * [`InstrumentationLevel`] / [`InstrumentationConfig`] — the cumulative
//!   instrumentation configurations evaluated in Table 3 of the paper.
//!
//! ```rust
//! use mcr_typemeta::{Field, TypeRegistry};
//!
//! let mut reg = TypeRegistry::new();
//! let int = reg.int("int", 4);
//! let node = reg.struct_type("node", vec![
//!     Field::new("value", int),
//!     Field::new("count", int),
//! ]);
//! assert_eq!(reg.size_of(node), 8);
//! assert!(!reg.has_pointers(node));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod instrument;
pub mod statics;
pub mod types;

pub use instrument::{InstrumentationConfig, InstrumentationLevel};
pub use statics::{CallSiteInfo, CallSiteRegistry, StaticObject, StaticRegistry};
pub use types::{Field, FieldLayout, LayoutElement, TypeDesc, TypeId, TypeKind, TypeRegistry};
