//! Instrumentation configurations.
//!
//! The paper evaluates run-time overhead cumulatively (Table 3): the
//! *unblockification* wrappers alone, plus the static LLVM instrumentation
//! (allocator tags), plus the dynamic instrumentation (shared-library
//! allocation tracking and process/thread metadata), plus the quiescence
//! detection hooks. [`InstrumentationLevel`] reproduces those configurations;
//! [`InstrumentationConfig`] adds the orthogonal choice of instrumenting a
//! program's custom region allocator (the `nginxreg` configuration).

/// Cumulative instrumentation levels, in the order of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum InstrumentationLevel {
    /// No MCR support at all (the overhead baseline).
    Baseline,
    /// Blocking library calls are wrapped (unblockification) but nothing else.
    Unblock,
    /// `Unblock` + static instrumentation: heap allocator tags and static
    /// object registration.
    StaticInstr,
    /// `StaticInstr` + dynamic instrumentation: shared-library allocation
    /// tracking and process/thread metadata maintenance.
    DynamicInstr,
    /// `DynamicInstr` + quiescence-detection hooks (the full MCR solution).
    QuiescenceDetection,
}

impl InstrumentationLevel {
    /// All levels, in evaluation order.
    pub const ALL: [InstrumentationLevel; 5] = [
        InstrumentationLevel::Baseline,
        InstrumentationLevel::Unblock,
        InstrumentationLevel::StaticInstr,
        InstrumentationLevel::DynamicInstr,
        InstrumentationLevel::QuiescenceDetection,
    ];

    /// Column label used in Table 3.
    pub fn label(self) -> &'static str {
        match self {
            InstrumentationLevel::Baseline => "baseline",
            InstrumentationLevel::Unblock => "Unblock",
            InstrumentationLevel::StaticInstr => "+SInstr",
            InstrumentationLevel::DynamicInstr => "+DInstr",
            InstrumentationLevel::QuiescenceDetection => "+QDet",
        }
    }

    /// Whether blocking calls are routed through unblockification wrappers.
    pub fn unblockified(self) -> bool {
        self >= InstrumentationLevel::Unblock
    }

    /// Whether the heap allocator maintains in-band MCR tags.
    pub fn heap_instrumented(self) -> bool {
        self >= InstrumentationLevel::StaticInstr
    }

    /// Whether shared-library allocations and process/thread metadata are
    /// tracked at run time.
    pub fn dynamic_tracking(self) -> bool {
        self >= InstrumentationLevel::DynamicInstr
    }

    /// Whether quiescence-detection hooks are active.
    pub fn quiescence_hooks(self) -> bool {
        self >= InstrumentationLevel::QuiescenceDetection
    }
}

/// The full instrumentation configuration of one MCR-enabled program build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstrumentationConfig {
    /// Cumulative level.
    pub level: InstrumentationLevel,
    /// Whether the program's *custom* region/slab allocator is instrumented
    /// as well (increases updatability at extra run-time cost; the paper's
    /// `nginxreg` configuration).
    pub instrument_region_allocator: bool,
}

impl InstrumentationConfig {
    /// The full MCR configuration without custom-allocator instrumentation
    /// (the paper's default deployment).
    pub fn full() -> Self {
        InstrumentationConfig {
            level: InstrumentationLevel::QuiescenceDetection,
            instrument_region_allocator: false,
        }
    }

    /// The full MCR configuration with custom-allocator instrumentation
    /// (the paper's `nginxreg` configuration).
    pub fn full_with_region_instrumentation() -> Self {
        InstrumentationConfig {
            level: InstrumentationLevel::QuiescenceDetection,
            instrument_region_allocator: true,
        }
    }

    /// An uninstrumented baseline build.
    pub fn baseline() -> Self {
        InstrumentationConfig { level: InstrumentationLevel::Baseline, instrument_region_allocator: false }
    }

    /// Builds a configuration at a specific level.
    pub fn at_level(level: InstrumentationLevel) -> Self {
        InstrumentationConfig { level, instrument_region_allocator: false }
    }
}

impl Default for InstrumentationConfig {
    fn default() -> Self {
        Self::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_cumulative() {
        use InstrumentationLevel::*;
        assert!(!Baseline.unblockified());
        assert!(Unblock.unblockified());
        assert!(!Unblock.heap_instrumented());
        assert!(StaticInstr.heap_instrumented());
        assert!(!StaticInstr.dynamic_tracking());
        assert!(DynamicInstr.dynamic_tracking());
        assert!(!DynamicInstr.quiescence_hooks());
        assert!(QuiescenceDetection.quiescence_hooks());
        assert!(QuiescenceDetection.unblockified() && QuiescenceDetection.heap_instrumented());
    }

    #[test]
    fn labels_match_table3_columns() {
        let labels: Vec<&str> = InstrumentationLevel::ALL.iter().map(|l| l.label()).collect();
        assert_eq!(labels, vec!["baseline", "Unblock", "+SInstr", "+DInstr", "+QDet"]);
    }

    #[test]
    fn config_constructors() {
        assert_eq!(InstrumentationConfig::default(), InstrumentationConfig::full());
        assert!(InstrumentationConfig::full_with_region_instrumentation().instrument_region_allocator);
        assert_eq!(InstrumentationConfig::baseline().level, InstrumentationLevel::Baseline);
        assert_eq!(
            InstrumentationConfig::at_level(InstrumentationLevel::Unblock).level,
            InstrumentationLevel::Unblock
        );
    }
}
