//! Static-object and allocation-site registries.
//!
//! These registries stand in for the relocation and data-type tags that MCR's
//! LLVM pass emits for global variables, functions and allocator call sites.
//! Each program *version* owns one [`StaticRegistry`] and one
//! [`CallSiteRegistry`]; state transfer matches static objects by symbol name
//! and dynamic objects by allocation-site name across the two versions.

use std::collections::BTreeMap;
use std::sync::Arc;

use mcr_procsim::{Addr, AllocSite};

use crate::types::TypeId;

/// A registered global/static object of one program version.
///
/// The symbol is interned as an `Arc<str>`: mutable tracing resolves objects
/// by symbol on its hot path, and an `Arc` clone is a refcount bump instead
/// of a heap copy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticObject {
    /// Symbol name (e.g. `"conf"`, `"list"`, `"b"`).
    pub symbol: Arc<str>,
    /// Address of the object in the version's address space.
    pub addr: Addr,
    /// Type of the object.
    pub ty: TypeId,
    /// Size in bytes (cached from the type registry at registration time).
    pub size: u64,
    /// Whether the object is a *root* for mutable tracing (global pointers
    /// are roots; large read-only blobs may be registered without being
    /// roots).
    pub is_root: bool,
}

/// Registry of the static objects of one program version.
#[derive(Debug, Clone, Default)]
pub struct StaticRegistry {
    by_symbol: BTreeMap<Arc<str>, StaticObject>,
}

impl StaticRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a static object.
    pub fn register(&mut self, object: StaticObject) {
        self.by_symbol.insert(Arc::clone(&object.symbol), object);
    }

    /// Convenience: registers a root object.
    pub fn register_root(&mut self, symbol: impl Into<Arc<str>>, addr: Addr, ty: TypeId, size: u64) {
        self.register(StaticObject { symbol: symbol.into(), addr, ty, size, is_root: true });
    }

    /// Looks up an object by symbol name.
    pub fn lookup(&self, symbol: &str) -> Option<&StaticObject> {
        self.by_symbol.get(symbol)
    }

    /// Finds the object containing `addr`, if any.
    pub fn object_containing(&self, addr: Addr) -> Option<&StaticObject> {
        self.by_symbol.values().find(|o| addr.0 >= o.addr.0 && addr.0 < o.addr.0 + o.size.max(1))
    }

    /// Iterates over all registered objects in symbol order.
    pub fn iter(&self) -> impl Iterator<Item = &StaticObject> {
        self.by_symbol.values()
    }

    /// Iterates over the root objects only.
    pub fn roots(&self) -> impl Iterator<Item = &StaticObject> {
        self.by_symbol.values().filter(|o| o.is_root)
    }

    /// Number of registered objects.
    pub fn len(&self) -> usize {
        self.by_symbol.len()
    }

    /// True if the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.by_symbol.is_empty()
    }

    /// Total bytes of registered static objects (metadata accounting).
    pub fn total_bytes(&self) -> u64 {
        self.by_symbol.values().map(|o| o.size).sum()
    }
}

/// Information recorded for one allocation call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSiteInfo {
    /// A stable, version-agnostic name for the site (typically
    /// `"function:variable"`), used to match dynamic objects across versions.
    /// Interned as an `Arc<str>` so per-object lookups during tracing and
    /// transfer never copy the name.
    pub name: Arc<str>,
    /// The type allocated at this site, as determined by MCR's static
    /// allocation-type analysis; `None` when the analysis cannot tell (the
    /// allocation is then opaque).
    pub ty: Option<TypeId>,
}

/// Registry of allocation call sites of one program version.
#[derive(Debug, Clone, Default)]
pub struct CallSiteRegistry {
    sites: BTreeMap<u64, CallSiteInfo>,
    by_name: BTreeMap<Arc<str>, u64>,
    next: u64,
}

impl CallSiteRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        CallSiteRegistry { sites: BTreeMap::new(), by_name: BTreeMap::new(), next: 1 }
    }

    /// Registers a call site (idempotent per name), returning its id.
    pub fn register(&mut self, name: impl Into<Arc<str>>, ty: Option<TypeId>) -> AllocSite {
        let name: Arc<str> = name.into();
        if let Some(&id) = self.by_name.get(&name) {
            return AllocSite(id);
        }
        let id = self.next;
        self.next += 1;
        self.by_name.insert(Arc::clone(&name), id);
        self.sites.insert(id, CallSiteInfo { name, ty });
        AllocSite(id)
    }

    /// Looks up a call site by id.
    pub fn get(&self, site: AllocSite) -> Option<&CallSiteInfo> {
        self.sites.get(&site.0)
    }

    /// Looks up a call site id by name.
    pub fn lookup(&self, name: &str) -> Option<AllocSite> {
        self.by_name.get(name).map(|&id| AllocSite(id))
    }

    /// Iterates over all registered call sites in id order.
    pub fn iter(&self) -> impl Iterator<Item = (AllocSite, &CallSiteInfo)> {
        self.sites.iter().map(|(&id, info)| (AllocSite(id), info))
    }

    /// Number of registered call sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// True if no call sites are registered.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_registry_lookup_and_containment() {
        let mut reg = StaticRegistry::new();
        reg.register_root("conf", Addr(0x40_0000), TypeId(1), 8);
        reg.register(StaticObject {
            symbol: "banner".into(),
            addr: Addr(0x40_0100),
            ty: TypeId(2),
            size: 64,
            is_root: false,
        });
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.lookup("conf").unwrap().addr, Addr(0x40_0000));
        assert!(reg.lookup("missing").is_none());
        assert_eq!(&*reg.object_containing(Addr(0x40_0120)).unwrap().symbol, "banner");
        assert!(reg.object_containing(Addr(0x50_0000)).is_none());
        assert_eq!(reg.roots().count(), 1);
        assert_eq!(reg.total_bytes(), 72);
    }

    #[test]
    fn reregistering_symbol_replaces() {
        let mut reg = StaticRegistry::new();
        reg.register_root("conf", Addr(0x1000), TypeId(1), 8);
        reg.register_root("conf", Addr(0x2000), TypeId(1), 8);
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.lookup("conf").unwrap().addr, Addr(0x2000));
    }

    #[test]
    fn call_site_registry_idempotent() {
        let mut reg = CallSiteRegistry::new();
        let a = reg.register("server_init:conf", Some(TypeId(3)));
        let b = reg.register("server_init:conf", Some(TypeId(3)));
        let c = reg.register("handle_event:node", None);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(reg.len(), 2);
        assert_eq!(&*reg.get(a).unwrap().name, "server_init:conf");
        assert_eq!(reg.iter().count(), 2);
        assert_eq!(reg.get(c).unwrap().ty, None);
        assert_eq!(reg.lookup("handle_event:node"), Some(c));
        assert_eq!(reg.lookup("nope"), None);
    }
}
