//! Property-style tests over the core data structures and the invariants the
//! MCR design depends on.
//!
//! The container has no network access, so instead of `proptest` these tests
//! drive the same invariants with a small deterministic xorshift generator:
//! every case is reproducible from its printed seed.

use std::cell::Cell;
use std::rc::Rc;

use mcr_bench::kernel_fingerprint;
use mcr_core::callstack::CallStackId;
use mcr_core::runtime::{
    boot, live_update, BootOptions, FaultPlan, PhaseName, PrecopyOptions, SchedulerMode, TransferMode,
    UpdateOptions, UpdatePipeline, UpdateReport,
};
use mcr_core::transfer::{apply_field_map, compute_field_map};
use mcr_procsim::{
    Addr, AddressSpace, AllocSite, ConnId, Fd, FdEntry, FdTable, Kernel, KernelObject, ObjId, ObjectTable,
    PtMalloc, RegionKind, TypeTag, PAGE_SIZE, RESERVED_FD_BASE,
};
use mcr_servers::{
    dirty_cache_records, dirty_connection_nodes, install_standard_files, program_by_name,
    stamp_request_scratch, CacheServer, CACHE_PORT,
};
use mcr_typemeta::{Field, InstrumentationConfig, TypeRegistry};
use mcr_workload::{open_idle_connections, run_workload, workload_for};

const HEAP_BASE: u64 = 0x0800_0000;
const HEAP_SIZE: u64 = 512 * PAGE_SIZE;
const CASES: u64 = 64;

/// Deterministic xorshift64* generator.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }

    fn chance(&mut self) -> bool {
        self.next() & 1 == 1
    }

    fn ident(&mut self, max_len: u64) -> String {
        let len = self.range(1, max_len + 1) as usize;
        (0..len).map(|_| (b'a' + (self.next() % 26) as u8) as char).collect()
    }
}

fn fresh_heap(instrumented: bool) -> (AddressSpace, PtMalloc) {
    let mut space = AddressSpace::new();
    space.map_region(Addr(HEAP_BASE), HEAP_SIZE, RegionKind::Heap, "heap").unwrap();
    (space, PtMalloc::new(Addr(HEAP_BASE), HEAP_SIZE, instrumented))
}

/// The allocator never hands out overlapping or unaligned chunks, and frees
/// make the memory reusable without corrupting live chunks.
#[test]
fn allocator_chunks_are_disjoint_and_aligned() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let n = rng.range(1, 60) as usize;
        let sizes: Vec<u64> = (0..n).map(|_| rng.range(1, 2048)).collect();
        let free_mask: Vec<bool> = (0..n).map(|_| rng.chance()).collect();
        let instrumented = rng.chance();

        let (mut space, mut heap) = fresh_heap(instrumented);
        heap.end_startup();
        let mut live: Vec<(Addr, u64)> = Vec::new();
        for (i, &size) in sizes.iter().enumerate() {
            let addr = heap.malloc(&mut space, size, AllocSite(i as u64), TypeTag(1)).unwrap();
            assert!(addr.is_aligned(16), "seed {seed}: unaligned chunk {addr}");
            for &(other, osize) in &live {
                let disjoint = addr.0 + size <= other.0 || other.0 + osize <= addr.0;
                assert!(disjoint, "seed {seed}: chunk {addr} overlaps {other}");
            }
            live.push((addr, size));
            if free_mask[i] && live.len() > 1 {
                let (victim, _) = live.remove(0);
                heap.free(&mut space, victim).unwrap();
            }
        }
        // Every live chunk is still reported live by the allocator.
        for &(addr, _) in &live {
            assert!(heap.is_live(addr), "seed {seed}: live chunk {addr} lost");
        }
    }
}

/// Soft-dirty tracking is a sound over-approximation: every written page is
/// reported dirty after the write.
#[test]
fn soft_dirty_never_misses_a_write() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let n = rng.range(1, 40) as usize;
        let offsets: Vec<u64> = (0..n).map(|_| rng.range(0, 64 * PAGE_SIZE - 8)).collect();

        let mut space = AddressSpace::new();
        space.map_region(Addr(0x1000_0000), 64 * PAGE_SIZE, RegionKind::Heap, "h").unwrap();
        space.clear_soft_dirty();
        for &off in &offsets {
            space.write_u64(Addr(0x1000_0000 + off), off).unwrap();
        }
        for &off in &offsets {
            assert!(space.is_dirty(Addr(0x1000_0000 + off)), "seed {seed}: page of offset {off} not dirty");
        }
        assert!(space.dirty_page_count() <= 2 * offsets.len());
    }
}

/// Descriptor allocation never reuses a number that is still open and the
/// reserved range never collides with ordinary allocation.
#[test]
fn fd_table_numbers_are_unique() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let n = rng.range(1, 80) as usize;
        let ops: Vec<u8> = (0..n).map(|_| rng.range(0, 3) as u8).collect();

        let mut table = FdTable::new();
        let mut open = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            match op {
                0 => open.push(table.alloc(ObjId(i as u64))),
                1 => open.push(table.alloc_reserved(ObjId(i as u64))),
                _ => {
                    if let Some(fd) = open.pop() {
                        table.remove(fd).unwrap();
                    }
                }
            }
            let mut seen = std::collections::BTreeSet::new();
            for &fd in &open {
                assert!(seen.insert(fd), "seed {seed}: duplicate descriptor {fd}");
                assert!(table.contains(fd));
            }
        }
    }
}

/// Call-stack IDs are deterministic and injective enough: permuting or
/// renaming frames changes the identifier.
#[test]
fn callstack_ids_distinguish_different_stacks() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let n = rng.range(1, 8) as usize;
        let frames: Vec<String> = (0..n).map(|_| rng.ident(12)).collect();

        let id = CallStackId::from_frames(&frames);
        assert_eq!(id, CallStackId::from_frames(&frames), "seed {seed}: not deterministic");
        let mut renamed = frames.clone();
        renamed[0] = format!("{}_v2", renamed[0]);
        assert_ne!(id, CallStackId::from_frames(&renamed), "seed {seed}: rename unnoticed");
        if frames.len() > 1 && frames[0] != frames[frames.len() - 1] {
            let mut reversed = frames.clone();
            reversed.reverse();
            assert_ne!(id, CallStackId::from_frames(&reversed), "seed {seed}: reversal unnoticed");
        }
    }
}

/// Structural type transformation preserves the values of every field that
/// exists in both versions, regardless of added fields.
#[test]
fn field_map_preserves_common_fields() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let values: Vec<u32> = (0..4).map(|_| rng.next() as u32).collect();
        let add_front = rng.chance();
        let add_back = rng.chance();

        let names = ["a", "b", "c", "d"];
        let mut old_reg = TypeRegistry::new();
        let int_old = old_reg.int("int", 4);
        let old_ty = old_reg.struct_type("s", names.iter().map(|n| Field::new(*n, int_old)).collect());
        let mut new_reg = TypeRegistry::new();
        let int_new = new_reg.int("int", 4);
        let mut new_fields = Vec::new();
        if add_front {
            new_fields.push(Field::new("front", int_new));
        }
        for n in names {
            new_fields.push(Field::new(n, int_new));
        }
        if add_back {
            new_fields.push(Field::new("back", int_new));
        }
        let new_ty = new_reg.struct_type("s", new_fields);

        let mut old_bytes = Vec::new();
        for v in &values {
            old_bytes.extend_from_slice(&v.to_le_bytes());
        }
        let map = compute_field_map(&old_reg, old_ty, &new_reg, new_ty);
        let new_bytes = apply_field_map(&map, &old_bytes);
        let new_layout = new_reg.struct_layout(new_ty);
        for (i, name) in names.iter().enumerate() {
            let field = new_layout.iter().find(|f| &f.name == name).unwrap();
            let off = field.offset as usize;
            let got = u32::from_le_bytes(new_bytes[off..off + 4].try_into().unwrap());
            assert_eq!(got, values[i], "seed {seed}: field {name} lost its value");
        }
    }
}

/// Boots `program`, serves a workload, opens idle connections and updates to
/// the next generation with the given trace/transfer worker count.
fn committed_update(program: &str, requests: u64, open: usize, workers: usize) -> (u64, UpdateReport) {
    let mut kernel = Kernel::new();
    install_standard_files(&mut kernel);
    let mut v1 = boot(&mut kernel, Box::new(program_by_name(program, 1)), &BootOptions::default()).unwrap();
    run_workload(&mut kernel, &mut v1, &workload_for(program, requests)).unwrap();
    let port = workload_for(program, 1).port;
    open_idle_connections(&mut kernel, &mut v1, port, open).unwrap();
    let opts = UpdateOptions { transfer_workers: workers, ..Default::default() };
    let (_v2, outcome) = live_update(
        &mut kernel,
        v1,
        Box::new(program_by_name(program, 2)),
        InstrumentationConfig::full(),
        &opts,
    );
    assert!(outcome.is_committed(), "{program} workers={workers}: {:?}", outcome.conflicts());
    let report = outcome.report().clone();
    (kernel_fingerprint(&kernel), report)
}

/// The pair-parallel trace/transfer phase is deterministic: for fault-free
/// updates, the serial ablation (`transfer_workers = 1`) and a parallel run
/// with a random worker count produce identical post-commit kernel state,
/// identical phase traces, tracing statistics, per-process transfer reports
/// and conflict lists. Only the parallel timing model may differ.
#[test]
fn parallel_and_serial_transfer_produce_identical_updates() {
    let programs = ["httpd", "nginx", "vsftpd", "sshd"];
    for seed in 0..4u64 {
        let mut rng = Rng::new(seed + 0xbeef);
        let program = programs[seed as usize % programs.len()];
        let requests = rng.range(1, 4);
        let open = rng.range(0, 5) as usize;
        let workers = rng.range(2, 9) as usize;

        let (serial_fp, serial) = committed_update(program, requests, open, 1);
        let (parallel_fp, parallel) = committed_update(program, requests, open, workers);

        assert_eq!(serial_fp, parallel_fp, "seed {seed} ({program}): post-commit kernel state diverged");
        assert_eq!(
            serial.phases.records(),
            parallel.phases.records(),
            "seed {seed} ({program}): phase traces diverged"
        );
        assert_eq!(serial.tracing, parallel.tracing, "seed {seed} ({program}): tracing stats diverged");
        assert_eq!(
            serial.transfer.per_process, parallel.transfer.per_process,
            "seed {seed} ({program}): per-process transfer reports diverged"
        );
        assert_eq!(serial.transfer.serial_duration, parallel.transfer.serial_duration);
        assert_eq!(serial.transfer.parallel_duration, parallel.transfer.parallel_duration);
        assert_eq!(
            serial.processes_matched + serial.processes_recreated,
            parallel.processes_matched + parallel.processes_recreated,
            "seed {seed} ({program}): pair counts diverged"
        );
        assert!(
            serial
                .transfer
                .per_process
                .iter()
                .zip(parallel.transfer.per_process.iter())
                .all(|(a, b)| a.conflicts == b.conflicts),
            "seed {seed} ({program}): conflict lists diverged"
        );
        // Shared-work timings agree; the parallel makespan can only improve
        // on the serial sum.
        assert_eq!(serial.timings.quiescence, parallel.timings.quiescence);
        assert_eq!(serial.timings.control_migration, parallel.timings.control_migration);
        assert_eq!(serial.timings.state_transfer_serial, parallel.timings.state_transfer_serial);
        assert_eq!(serial.timings.total, parallel.timings.total);
        assert_eq!(
            serial.timings.state_transfer, serial.transfer.serial_duration,
            "one worker reproduces the sequential sum"
        );
        assert!(parallel.timings.state_transfer <= serial.timings.state_transfer);
        assert_eq!(serial.transfer.workers, 1);
        assert_eq!(parallel.transfer.workers, workers.min(serial.transfer.per_process.len()));
    }
}

/// Conflicting updates roll back identically too: the aborting conflict
/// list, the per-process conflict attribution in the transfer report, and
/// the post-rollback kernel state do not depend on the worker count.
#[test]
fn parallel_and_serial_rollbacks_report_identical_conflicts() {
    // vsftpd generation 1 -> 3 changes `conn_s` under non-updatable
    // references, which aborts the update during state transfer.
    let run = |workers: usize| {
        let mut kernel = Kernel::new();
        install_standard_files(&mut kernel);
        let mut v1 =
            boot(&mut kernel, Box::new(program_by_name("vsftpd", 1)), &BootOptions::default()).unwrap();
        run_workload(&mut kernel, &mut v1, &workload_for("vsftpd", 6)).unwrap();
        let opts = UpdateOptions { transfer_workers: workers, ..Default::default() };
        let (_v1, outcome) = live_update(
            &mut kernel,
            v1,
            Box::new(program_by_name("vsftpd", 3)),
            InstrumentationConfig::full(),
            &opts,
        );
        assert!(!outcome.is_committed(), "workers={workers}: expected a conflict rollback");
        (outcome.conflicts().to_vec(), outcome.report().clone(), kernel_fingerprint(&kernel))
    };
    let (serial_conflicts, serial_report, serial_fp) = run(1);
    for workers in [2usize, 5] {
        let (parallel_conflicts, parallel_report, parallel_fp) = run(workers);
        assert!(!serial_conflicts.is_empty(), "the scenario must produce conflicts");
        assert_eq!(serial_conflicts, parallel_conflicts, "workers={workers}: conflict lists diverged");
        assert_eq!(
            serial_report.transfer.per_process, parallel_report.transfer.per_process,
            "workers={workers}: per-process reports diverged"
        );
        assert!(
            serial_report.transfer.per_process.iter().any(|r| !r.conflicts.is_empty()),
            "per-process conflict attribution survives into the rolled-back report"
        );
        assert_eq!(serial_fp, parallel_fp, "workers={workers}: post-rollback kernel state diverged");
    }
}

/// Boots `program` (always under the event-driven scheduler, so the
/// pre-update state is identical), serves a workload, opens idle
/// connections, then runs the gen-1 → gen-2 update with the *update-time*
/// scheduler mode under test.
fn update_with_sched_mode(
    program: &str,
    requests: u64,
    open: usize,
    mode: SchedulerMode,
    new_generation: u32,
) -> (u64, Vec<mcr_core::Conflict>, UpdateReport) {
    let mut kernel = Kernel::new();
    install_standard_files(&mut kernel);
    let mut v1 = boot(&mut kernel, Box::new(program_by_name(program, 1)), &BootOptions::default()).unwrap();
    run_workload(&mut kernel, &mut v1, &workload_for(program, requests)).unwrap();
    let port = workload_for(program, 1).port;
    open_idle_connections(&mut kernel, &mut v1, port, open).unwrap();
    // Flip the old instance's scheduling core only now, at update time: both
    // runs enter the pipeline with byte-identical kernel and instance state.
    v1.sched.mode = mode;
    let opts = UpdateOptions { scheduler: mode, ..Default::default() };
    let (_survivor, outcome) = live_update(
        &mut kernel,
        v1,
        Box::new(program_by_name(program, new_generation)),
        InstrumentationConfig::full(),
        &opts,
    );
    (kernel_fingerprint(&kernel), outcome.conflicts().to_vec(), outcome.report().clone())
}

/// The event-driven scheduler is a drop-in replacement for the legacy
/// full-scan core: a committed live update driven by wake-queue barriers
/// produces a kernel fingerprint and an `UpdateReport` identical to the
/// full-scan path on the same seed — same phase trace, same timings on the
/// virtual clock, same tracing statistics and per-process transfer reports.
#[test]
fn event_driven_and_full_scan_updates_are_identical() {
    let programs = ["httpd", "nginx", "vsftpd", "sshd"];
    for seed in 0..4u64 {
        let mut rng = Rng::new(seed + 0xfeed);
        let program = programs[seed as usize % programs.len()];
        let requests = rng.range(1, 4);
        let open = rng.range(0, 5) as usize;

        let (event_fp, event_conflicts, event) =
            update_with_sched_mode(program, requests, open, SchedulerMode::EventDriven, 2);
        let (scan_fp, scan_conflicts, scan) =
            update_with_sched_mode(program, requests, open, SchedulerMode::FullScan, 2);

        assert!(event_conflicts.is_empty(), "seed {seed} ({program}): {event_conflicts:?}");
        assert!(scan_conflicts.is_empty(), "seed {seed} ({program}): {scan_conflicts:?}");
        assert_eq!(event_fp, scan_fp, "seed {seed} ({program}): post-commit kernel state diverged");
        assert_eq!(
            event.phases.records(),
            scan.phases.records(),
            "seed {seed} ({program}): phase traces diverged"
        );
        assert_eq!(event.timings.quiescence, scan.timings.quiescence);
        assert_eq!(event.timings.control_migration, scan.timings.control_migration);
        assert_eq!(event.timings.state_transfer, scan.timings.state_transfer);
        assert_eq!(event.timings.total, scan.timings.total);
        assert_eq!(event.tracing, scan.tracing, "seed {seed} ({program}): tracing stats diverged");
        assert_eq!(
            event.transfer.per_process, scan.transfer.per_process,
            "seed {seed} ({program}): per-process transfer reports diverged"
        );
        assert_eq!(event.replay, scan.replay, "seed {seed} ({program}): replay stats diverged");
        assert_eq!(event.open_connections, scan.open_connections);
        assert_eq!(
            event.processes_matched + event.processes_recreated,
            scan.processes_matched + scan.processes_recreated
        );
    }
}

/// Rollbacks are identical across scheduler cores too: the same conflicting
/// update aborts with the same conflict list, the same per-process conflict
/// attribution, and byte-identical post-rollback kernel state.
#[test]
fn event_driven_and_full_scan_rollbacks_are_identical() {
    // vsftpd generation 1 -> 3 changes `conn_s` under non-updatable
    // references, which aborts the update during state transfer.
    let (event_fp, event_conflicts, event) =
        update_with_sched_mode("vsftpd", 6, 0, SchedulerMode::EventDriven, 3);
    let (scan_fp, scan_conflicts, scan) = update_with_sched_mode("vsftpd", 6, 0, SchedulerMode::FullScan, 3);

    assert!(!event_conflicts.is_empty(), "the scenario must produce conflicts");
    assert_eq!(event_conflicts, scan_conflicts, "conflict lists diverged");
    assert_eq!(event.transfer.per_process, scan.transfer.per_process, "per-process reports diverged");
    assert_eq!(event.phases.records(), scan.phases.records(), "phase traces diverged");
    assert_eq!(event_fp, scan_fp, "post-rollback kernel state diverged");
}

/// Boots `program`, serves traffic, then updates either stop-the-world
/// (`precopy == false`: the seeded write batches are applied *before* the
/// update) or with pre-copy (`precopy == true`: the same batches are applied
/// *between the concurrent rounds* through the pipeline hook). Both paths
/// mutate the exact same addresses with the exact same values in the same
/// order, so both updates operate on the same final memory image — the
/// pre-copy design promises their outcomes are byte-identical.
#[allow(clippy::too_many_arguments)]
fn precopied_or_stw_update(
    program: &str,
    requests: u64,
    open: usize,
    rounds: usize,
    writes_per_round: usize,
    precopy: bool,
    mode: SchedulerMode,
    fault: Option<FaultPlan>,
    seed: u64,
) -> (u64, Vec<mcr_core::Conflict>, UpdateReport) {
    let mut kernel = Kernel::new();
    install_standard_files(&mut kernel);
    let mut v1 = boot(&mut kernel, Box::new(program_by_name(program, 1)), &BootOptions::default()).unwrap();
    run_workload(&mut kernel, &mut v1, &workload_for(program, requests)).unwrap();
    let port = workload_for(program, 1).port;
    open_idle_connections(&mut kernel, &mut v1, port, open).unwrap();
    // Flip the scheduling core only now: every configuration enters the
    // pipeline with byte-identical kernel and instance state.
    v1.sched.mode = mode;
    let mut rng = Rng::new(seed ^ 0x9d0f_11e5);
    let stamps: Vec<u32> = (0..rounds).map(|_| rng.next() as u32).collect();
    let opts = UpdateOptions {
        scheduler: mode,
        precopy: if precopy {
            PrecopyOptions { rounds, convergence_bytes: 0, serve_rounds: 1 }
        } else {
            PrecopyOptions::disabled()
        },
        ..Default::default()
    };
    let mut pipeline = if precopy {
        let stamps = stamps.clone();
        UpdatePipeline::for_options(&opts).with_precopy_hook(Box::new(move |kernel, old, round| {
            dirty_connection_nodes(kernel, old, writes_per_round, stamps[round - 1]);
        }))
    } else {
        for &stamp in &stamps {
            dirty_connection_nodes(&mut kernel, &v1, writes_per_round, stamp);
        }
        UpdatePipeline::for_options(&opts)
    };
    if let Some(fault) = fault {
        pipeline = pipeline.with_fault_plan(fault);
    }
    let (_survivor, outcome) = pipeline.run(
        &mut kernel,
        v1,
        Box::new(program_by_name(program, 2)),
        InstrumentationConfig::full(),
        &opts,
    );
    (kernel_fingerprint(&kernel), outcome.conflicts().to_vec(), outcome.report().clone())
}

/// Pre-copy + delta commit is byte-identical to a pure stop-the-world
/// update: with a seeded mutator dirtying connection records between the
/// concurrent rounds, the committed kernel fingerprint, tracing statistics,
/// per-process transfer reports and conflict sets match the baseline that
/// applied the same writes up front — on both scheduler cores. Only the
/// downtime split may (and must) differ.
#[test]
fn precopy_and_stop_the_world_updates_are_identical() {
    let programs = ["httpd", "nginx", "vsftpd", "sshd"];
    for seed in 0..4u64 {
        let mut rng = Rng::new(seed + 0xacce55);
        let program = programs[seed as usize % programs.len()];
        let requests = rng.range(2, 5);
        let open = rng.range(0, 4) as usize;
        let rounds = rng.range(2, 5) as usize;
        let writes = rng.range(1, 3) as usize;
        let mut fingerprints = Vec::new();
        for mode in [SchedulerMode::EventDriven, SchedulerMode::FullScan] {
            let (stw_fp, stw_conflicts, stw) =
                precopied_or_stw_update(program, requests, open, rounds, writes, false, mode, None, seed);
            let (pre_fp, pre_conflicts, pre) =
                precopied_or_stw_update(program, requests, open, rounds, writes, true, mode, None, seed);
            assert!(stw_conflicts.is_empty(), "seed {seed} ({program}): {stw_conflicts:?}");
            assert!(pre_conflicts.is_empty(), "seed {seed} ({program}): {pre_conflicts:?}");
            assert_eq!(stw_fp, pre_fp, "seed {seed} ({program}, {mode:?}): kernel state diverged");
            assert_eq!(
                stw.transfer.per_process, pre.transfer.per_process,
                "seed {seed} ({program}, {mode:?}): per-process transfer reports diverged"
            );
            assert_eq!(stw.tracing, pre.tracing, "seed {seed} ({program}, {mode:?}): tracing diverged");
            assert_eq!(stw.transfer.serial_duration, pre.transfer.serial_duration);
            assert_eq!(stw.open_connections, pre.open_connections);
            assert_eq!(
                stw.processes_matched + stw.processes_recreated,
                pre.processes_matched + pre.processes_recreated
            );
            // The pre-copy run really ran concurrent rounds and the window
            // only paid for the residual.
            assert!(pre.precopy.enabled && !pre.precopy.rounds.is_empty(), "seed {seed}: no rounds ran");
            assert!(!stw.precopy.enabled);
            assert!(
                pre.precopy.residual.objects <= stw.precopy.residual.objects,
                "seed {seed} ({program}): pre-copy did not shrink the residual"
            );
            assert!(
                pre.timings.downtime <= stw.timings.downtime,
                "seed {seed} ({program}): pre-copy increased downtime"
            );
            assert!(pre.timings.precopy.0 > 0 && stw.timings.precopy.0 == 0);
            fingerprints.push(pre_fp);
        }
        // ... and the pre-copied update is deterministic across cores.
        assert_eq!(fingerprints[0], fingerprints[1], "seed {seed} ({program}): cores diverged");
    }
}

/// Rollbacks too: a fault injected right before commit aborts a pre-copied
/// update exactly like it aborts a stop-the-world one — same conflicts,
/// same per-process reports, byte-identical post-rollback kernel state —
/// on both scheduler cores.
#[test]
fn precopy_and_stop_the_world_rollbacks_are_identical() {
    for mode in [SchedulerMode::EventDriven, SchedulerMode::FullScan] {
        let fault = || Some(FaultPlan::at_boundaries([PhaseName::Commit]));
        let (stw_fp, stw_conflicts, stw) =
            precopied_or_stw_update("nginx", 3, 2, 3, 2, false, mode, fault(), 0x0ff);
        let (pre_fp, pre_conflicts, pre) =
            precopied_or_stw_update("nginx", 3, 2, 3, 2, true, mode, fault(), 0x0ff);
        assert!(
            stw_conflicts.iter().any(|c| matches!(c, mcr_core::Conflict::FaultInjected { .. })),
            "{mode:?}: baseline did not abort"
        );
        assert_eq!(stw_conflicts, pre_conflicts, "{mode:?}: conflict lists diverged");
        assert_eq!(stw_fp, pre_fp, "{mode:?}: post-rollback kernel state diverged");
        assert_eq!(
            stw.transfer.per_process, pre.transfer.per_process,
            "{mode:?}: per-process reports diverged"
        );
        // The pre-copied attempt aborted after its concurrent rounds ran.
        assert!(pre.precopy.enabled && !pre.precopy.rounds.is_empty());
        let _ = stw;
    }
}

/// Boots the single-process cache archetype, bulk-fills its heap, then
/// live-updates gen-1 → gen-2 with the given intra-pair shard count. The
/// seeded xorshift mutator dirties every 3rd cache entry once per "round":
/// with `precopy == true` through the pipeline's between-rounds hook, with
/// `precopy == false` all batches up front — both paths mutate the same
/// addresses with the same values in the same order, so every configuration
/// updates the same final memory image.
#[allow(clippy::too_many_arguments)]
fn sharded_cache_update(
    entries: u64,
    shards: usize,
    rounds: usize,
    precopy: bool,
    mode: SchedulerMode,
    fault: Option<FaultPlan>,
    seed: u64,
) -> (u64, Vec<mcr_core::Conflict>, UpdateReport) {
    let mut kernel = Kernel::new();
    let mut v1 = boot(&mut kernel, Box::new(CacheServer::new(1)), &BootOptions::default()).unwrap();
    let conn = kernel.client_connect(CACHE_PORT).unwrap();
    kernel.client_send(conn, format!("fill {entries} 96").into_bytes()).unwrap();
    let _ = mcr_core::runtime::run_rounds(&mut kernel, &mut v1, 2).unwrap();
    assert!(kernel.client_recv(conn).is_some(), "cache answered the fill");
    kernel.client_close(conn).unwrap();
    // Flip the scheduling core only now: every configuration enters the
    // pipeline with byte-identical kernel and instance state.
    v1.sched.mode = mode;
    let mut rng = Rng::new(seed ^ 0x517a_11e5);
    let stamps: Vec<u32> = (0..rounds).map(|_| rng.next() as u32).collect();
    let opts = UpdateOptions {
        scheduler: mode,
        intra_pair_shards: shards,
        precopy: if precopy {
            PrecopyOptions { rounds, convergence_bytes: 0, serve_rounds: 1 }
        } else {
            PrecopyOptions::disabled()
        },
        ..Default::default()
    };
    let mut pipeline = if precopy {
        let stamps = stamps.clone();
        UpdatePipeline::for_options(&opts).with_precopy_hook(Box::new(move |kernel, old, round| {
            dirty_cache_records(kernel, old, 3, stamps[round - 1]);
        }))
    } else {
        for &stamp in &stamps {
            dirty_cache_records(&mut kernel, &v1, 3, stamp);
        }
        UpdatePipeline::for_options(&opts)
    };
    if let Some(fault) = fault {
        pipeline = pipeline.with_fault_plan(fault);
    }
    let (_survivor, outcome) =
        pipeline.run(&mut kernel, v1, Box::new(CacheServer::new(2)), InstrumentationConfig::full(), &opts);
    (kernel_fingerprint(&kernel), outcome.conflicts().to_vec(), outcome.report().clone())
}

/// The intra-pair sharded engine is deterministic end to end: on the
/// single-process big-heap archetype, committed updates are byte-identical —
/// kernel fingerprint, per-process transfer reports, conflicts and Table 2
/// tracing stats — across `intra_pair_shards ∈ {1, 2, 7}`, on both scheduler
/// cores, with pre-copy off and on (the seeded xorshift mutator dirtying
/// entries between rounds). Only the charged makespan may shrink.
#[test]
fn intra_pair_sharded_commits_are_byte_identical() {
    let mut fingerprints = Vec::new();
    for mode in [SchedulerMode::EventDriven, SchedulerMode::FullScan] {
        for precopy in [false, true] {
            let (base_fp, base_conflicts, base) =
                sharded_cache_update(300, 1, 3, precopy, mode, None, 0xCAC4E);
            assert!(base_conflicts.is_empty(), "{mode:?}/{precopy}: {base_conflicts:?}");
            assert!(base.transfer.objects_transferred() >= 600, "entries and values moved");
            for shards in [2usize, 7] {
                let (fp, conflicts, report) =
                    sharded_cache_update(300, shards, 3, precopy, mode, None, 0xCAC4E);
                assert!(conflicts.is_empty(), "{mode:?}/{precopy}/{shards}: {conflicts:?}");
                assert_eq!(base_fp, fp, "{mode:?}/{precopy}/{shards} shards: kernel state diverged");
                assert_eq!(
                    base.tracing, report.tracing,
                    "{mode:?}/{precopy}/{shards} shards: tracing stats diverged"
                );
                assert_eq!(
                    base.transfer.per_process, report.transfer.per_process,
                    "{mode:?}/{precopy}/{shards} shards: per-process transfer reports diverged"
                );
                assert_eq!(base.transfer.serial_duration, report.transfer.serial_duration);
                assert_eq!(
                    base.processes_matched + base.processes_recreated,
                    report.processes_matched + report.processes_recreated
                );
                // The whole point: the charged trace+transfer makespan
                // strictly improves on the single pair.
                assert!(
                    report.timings.state_transfer < base.timings.state_transfer,
                    "{mode:?}/{precopy}/{shards} shards: no makespan speedup \
                     ({:?} vs {:?})",
                    report.timings.state_transfer,
                    base.timings.state_transfer
                );
            }
            fingerprints.push(base_fp);
        }
    }
    // ... and the committed state is also identical across scheduler cores
    // and pre-copy on/off (same seed → same final memory image).
    assert!(fingerprints.windows(2).all(|w| w[0] == w[1]), "cores / pre-copy diverged: {fingerprints:x?}");
}

/// Rollbacks too: a mid-phase fault at the n-th transferred object aborts
/// the sharded update exactly like the serial one — same conflict list, same
/// per-process reports, byte-identical post-rollback kernel state — whether
/// the fault lands in the stop-the-world window or inside a concurrent
/// pre-copy round.
#[test]
fn intra_pair_sharded_rollbacks_are_byte_identical() {
    for precopy in [false, true] {
        // A single matched pair with its serial apply pass makes the shared
        // n-th-object counter deterministic, so the fault lands on the same
        // object for every shard count.
        let fault = || Some(FaultPlan::failing_at_transfer_object(25));
        let (base_fp, base_conflicts, base) =
            sharded_cache_update(200, 1, 2, precopy, SchedulerMode::EventDriven, fault(), 0xB0B0);
        assert!(
            base_conflicts.iter().any(|c| matches!(c, mcr_core::Conflict::FaultInjected { .. })),
            "precopy={precopy}: the armed fault did not fire: {base_conflicts:?}"
        );
        for shards in [2usize, 7] {
            let (fp, conflicts, report) =
                sharded_cache_update(200, shards, 2, precopy, SchedulerMode::EventDriven, fault(), 0xB0B0);
            assert_eq!(base_conflicts, conflicts, "precopy={precopy}/{shards}: conflict lists diverged");
            assert_eq!(base_fp, fp, "precopy={precopy}/{shards}: post-rollback kernel state diverged");
            assert_eq!(
                base.transfer.per_process, report.transfer.per_process,
                "precopy={precopy}/{shards}: per-process reports diverged"
            );
            assert_eq!(base.phases.records().len(), report.phases.records().len());
        }
        // With pre-copy the abort happened inside a concurrent round: the
        // old instance was still live, so no downtime was charged.
        if precopy {
            assert_eq!(base.timings.downtime.0, 0, "fault inside a round costs no downtime");
        }
    }
}

/// The slab-indexed kernel substrate preserves the ordered-map determinism
/// contract end to end: for every seed the committed update is
/// byte-identical — kernel fingerprint, tracing statistics, per-process
/// transfer reports, conflicts — across both scheduler cores and pre-copy
/// on/off, with the seeded xorshift mutator dirtying connection records
/// between the concurrent rounds. The pre-slab substrate satisfied exactly
/// this matrix; identical fingerprints in every cell are the proof that the
/// slab rework changed no observable order.
#[test]
fn slab_substrate_updates_are_identical_across_every_configuration() {
    let programs = ["httpd", "nginx", "vsftpd", "sshd"];
    for seed in 0..6u64 {
        let mut rng = Rng::new(seed + 0x51ab);
        let program = programs[seed as usize % programs.len()];
        let requests = rng.range(1, 4);
        let open = rng.range(0, 4) as usize;
        let rounds = rng.range(2, 4) as usize;
        let writes = rng.range(1, 3) as usize;

        let mut runs = Vec::new();
        for mode in [SchedulerMode::EventDriven, SchedulerMode::FullScan] {
            for precopy in [false, true] {
                let (fp, conflicts, report) = precopied_or_stw_update(
                    program, requests, open, rounds, writes, precopy, mode, None, seed,
                );
                assert!(
                    conflicts.is_empty(),
                    "seed {seed} ({program}, {mode:?}, precopy={precopy}): {conflicts:?}"
                );
                runs.push((mode, precopy, fp, report));
            }
        }
        let (_, _, base_fp, base) = &runs[0];
        for (mode, precopy, fp, report) in &runs {
            let ctx = format!("seed {seed} ({program}, {mode:?}, precopy={precopy})");
            assert_eq!(fp, base_fp, "{ctx}: post-commit kernel state diverged");
            assert_eq!(report.tracing, base.tracing, "{ctx}: tracing stats diverged");
            assert_eq!(
                report.transfer.per_process, base.transfer.per_process,
                "{ctx}: per-process transfer reports diverged"
            );
            assert_eq!(report.transfer.serial_duration, base.transfer.serial_duration, "{ctx}");
            assert_eq!(report.open_connections, base.open_connections, "{ctx}");
            assert_eq!(
                report.processes_matched + report.processes_recreated,
                base.processes_matched + base.processes_recreated,
                "{ctx}: pair counts diverged"
            );
        }
        // Phase traces legitimately differ between pre-copy on and off (the
        // concurrent rounds add phases) but never across scheduler cores
        // within the same setting: runs are ordered (ED,stw), (ED,pre),
        // (FS,stw), (FS,pre). The only per-core latitude is the Precopy
        // phase's duration — its serve rounds step the old instance under
        // the core being tested, and the full scan burns more virtual time
        // per round by construction.
        assert_eq!(
            runs[0].3.phases.records(),
            runs[2].3.phases.records(),
            "seed {seed} ({program}): stop-the-world phase traces diverged across cores"
        );
        for (ed, fs) in runs[1].3.phases.records().iter().zip(runs[3].3.phases.records()) {
            assert_eq!(ed.name, fs.name, "seed {seed} ({program}): pre-copy phase order diverged");
            assert_eq!(ed.completed, fs.completed, "seed {seed} ({program}): {:?} completion", ed.name);
            if ed.name != PhaseName::Precopy {
                assert_eq!(
                    ed.duration, fs.duration,
                    "seed {seed} ({program}): {:?} duration diverged across cores",
                    ed.name
                );
            }
        }
        assert_eq!(runs[1].3.phases.records().len(), runs[3].3.phases.records().len());
    }
}

/// The slab-backed object table behaves exactly like the ordered map it
/// replaced: a shadow `BTreeMap` model driven by the same seeded operation
/// stream agrees on lookups, refcounts, insertion-order iteration (ascending
/// id — ids are monotonic and never reused) and the lowest-live-id port
/// resolution, and stale ids (the generation tags) never resolve.
#[test]
fn object_table_slab_matches_the_ordered_map_model() {
    use std::collections::{BTreeMap, VecDeque};
    for seed in 0..CASES {
        let mut rng = Rng::new(seed ^ 0x0b1ec7);
        let mut table = ObjectTable::new();
        let mut model: BTreeMap<u64, (KernelObject, u32)> = BTreeMap::new();
        let mut dead: Vec<ObjId> = Vec::new();
        let mut next_conn = 1u64;
        let steps = rng.range(20, 120);
        for _ in 0..steps {
            let live: Vec<u64> = model.keys().copied().collect();
            match rng.range(0, 10) {
                // Insert a fresh object (weighted so tables actually grow).
                0..=3 => {
                    let obj = match rng.range(0, 4) {
                        0 => KernelObject::Listener {
                            port: (rng.range(1, 6) * 1000) as u16,
                            listening: rng.chance(),
                            backlog: VecDeque::new(),
                        },
                        1 => {
                            let conn = ConnId(next_conn);
                            next_conn += 1;
                            KernelObject::Connection {
                                conn,
                                inbox: VecDeque::new(),
                                outbox: VecDeque::new(),
                                peer_closed: false,
                            }
                        }
                        2 => KernelObject::Pipe { buffer: VecDeque::new() },
                        _ => KernelObject::File { path: rng.ident(8), offset: rng.range(0, 64) },
                    };
                    let id = table.insert(obj.clone());
                    assert!(model.insert(id.0, (obj, 1)).is_none(), "seed {seed}: id {id:?} reused");
                }
                // Duplicate a random live object (fork / fd passing).
                4 if !live.is_empty() => {
                    let id = live[rng.range(0, live.len() as u64) as usize];
                    table.incref(ObjId(id));
                    model.get_mut(&id).expect("live").1 += 1;
                }
                // Drop one reference; the object dies at zero.
                5 | 6 if !live.is_empty() => {
                    let id = live[rng.range(0, live.len() as u64) as usize];
                    let destroyed = table.decref(ObjId(id));
                    let rc = &mut model.get_mut(&id).expect("live").1;
                    *rc -= 1;
                    assert_eq!(destroyed, *rc == 0, "seed {seed}: destroy disagreement on {id}");
                    if *rc == 0 {
                        model.remove(&id);
                        dead.push(ObjId(id));
                    }
                }
                // Mutate a live connection's inbox through `get_mut`.
                7 if !live.is_empty() => {
                    let id = live[rng.range(0, live.len() as u64) as usize];
                    let payload = rng.ident(6).into_bytes();
                    if let Some(KernelObject::Connection { inbox, .. }) = table.get_mut(ObjId(id)) {
                        inbox.push_back(payload.clone());
                        match &mut model.get_mut(&id).expect("live").0 {
                            KernelObject::Connection { inbox, .. } => inbox.push_back(payload),
                            other => panic!("seed {seed}: model holds {other:?} under {id}"),
                        }
                    }
                }
                // Stale ids must act dead: no lookup, refcount 0, decref no-op.
                _ => {
                    if let Some(&id) = dead.last() {
                        assert!(table.get(id).is_none(), "seed {seed}: stale {id:?} resolved");
                        assert_eq!(table.refcount(id), 0, "seed {seed}: stale {id:?} has refs");
                        assert!(!table.decref(id), "seed {seed}: stale {id:?} destroyed twice");
                    }
                }
            }
            // Step invariants: size, per-id state, and iteration order.
            assert_eq!(table.len(), model.len(), "seed {seed}: live count diverged");
            let order: Vec<u64> = table.iter().map(|(id, _)| id.0).collect();
            let expected: Vec<u64> = model.keys().copied().collect();
            assert_eq!(order, expected, "seed {seed}: insertion order is not ascending-id order");
            for (id, (obj, rc)) in &model {
                assert_eq!(table.get(ObjId(*id)), Some(obj), "seed {seed}: object {id} diverged");
                assert_eq!(table.refcount(ObjId(*id)), *rc, "seed {seed}: refcount {id} diverged");
            }
        }
        // Indexed lookups match a full scan of the model.
        for port in [1000u16, 2000, 3000, 4000, 5000] {
            let scan = model
                .iter()
                .filter(|(_, (o, _))| {
                    matches!(o, KernelObject::Listener { port: p, listening: true, .. } if *p == port)
                })
                .map(|(&id, _)| ObjId(id))
                .min();
            assert_eq!(table.listener_for_port(port), scan, "seed {seed}: port {port} diverged");
        }
        for conn in 1..next_conn {
            let scan = model
                .iter()
                .filter(
                    |(_, (o, _))| matches!(o, KernelObject::Connection { conn: c, .. } if *c == ConnId(conn)),
                )
                .map(|(&id, _)| ObjId(id))
                .min();
            assert_eq!(table.connection_for(ConnId(conn)), scan, "seed {seed}: conn {conn} diverged");
        }
    }
}

/// The slab-backed descriptor table behaves exactly like the ordered map it
/// replaced: a shadow `BTreeMap` model agrees on lowest-free-first
/// allocation, never-recycled reserved numbers, explicit installs, removal,
/// and ascending-descriptor iteration across the low and reserved ranges.
#[test]
fn fd_table_slab_matches_the_ordered_map_model() {
    use std::collections::BTreeMap;
    for seed in 0..CASES {
        let mut rng = Rng::new(seed ^ 0xfd7ab1e);
        let mut table = FdTable::new();
        let mut model: BTreeMap<i32, FdEntry> = BTreeMap::new();
        let mut reserved_high = RESERVED_FD_BASE - 1;
        let steps = rng.range(20, 120);
        for step in 0..steps {
            let obj = ObjId(step + 1);
            match rng.range(0, 8) {
                0..=2 => {
                    let fd = table.alloc(obj);
                    let lowest = (0..).find(|n| !model.contains_key(n)).expect("some free fd");
                    assert_eq!(fd.0, lowest, "seed {seed}: allocation is not lowest-free-first");
                    model.insert(fd.0, FdEntry { object: obj, cloexec: false, inherited: false });
                }
                3 => {
                    let fd = table.alloc_reserved(obj);
                    assert!(fd.is_reserved(), "seed {seed}: reserved alloc left the high range");
                    assert!(fd.0 > reserved_high, "seed {seed}: reserved number {fd} reissued");
                    reserved_high = fd.0;
                    model.insert(fd.0, FdEntry { object: obj, cloexec: false, inherited: true });
                }
                4 => {
                    let fd = Fd(rng.range(0, 40) as i32);
                    let res = table.install_at(fd, obj, true);
                    match model.entry(fd.0) {
                        std::collections::btree_map::Entry::Occupied(_) => {
                            assert!(res.is_err(), "seed {seed}: install_at clobbered open {fd}");
                        }
                        std::collections::btree_map::Entry::Vacant(slot) => {
                            res.unwrap_or_else(|err| panic!("seed {seed}: install_at({fd}) failed: {err}"));
                            slot.insert(FdEntry { object: obj, cloexec: false, inherited: true });
                        }
                    }
                }
                5 | 6 if !model.is_empty() => {
                    let open: Vec<i32> = model.keys().copied().collect();
                    let fd = Fd(open[rng.range(0, open.len() as u64) as usize]);
                    let removed = table.remove(fd).unwrap_or_else(|e| {
                        panic!("seed {seed}: remove({fd}) failed: {e}");
                    });
                    assert_eq!(Some(removed), model.remove(&fd.0), "seed {seed}: entry diverged");
                }
                _ if !model.is_empty() => {
                    let open: Vec<i32> = model.keys().copied().collect();
                    let fd = Fd(open[rng.range(0, open.len() as u64) as usize]);
                    let flag = rng.chance();
                    table.set_cloexec(fd, flag).expect("open descriptor");
                    model.get_mut(&fd.0).expect("open").cloexec = flag;
                }
                _ => {}
            }
            // Step invariants: size, lookups, and ascending iteration (low
            // range first, then reserved — i.e. plain ascending fd order).
            assert_eq!(table.len(), model.len(), "seed {seed}: open count diverged");
            let got: Vec<(i32, FdEntry)> = table.iter().map(|(fd, e)| (fd.0, e)).collect();
            let expected: Vec<(i32, FdEntry)> = model.iter().map(|(&fd, &e)| (fd, e)).collect();
            assert_eq!(got, expected, "seed {seed}: iteration diverged from the ordered model");
        }
    }
}

/// Scratch stamps applied after resume, per test case of the post-copy
/// property suite.
const POST_STAMP_ROUNDS: usize = 3;

/// Boots `program`, serves traffic, applies three seeded write batches to
/// the connection records *before* the update (so every transfer mode sees
/// the same final old-version memory image), then updates gen-1 → gen-2
/// under the given transfer `mode`, scheduler core and intra-pair shard
/// count. A post-resume write workload — [`POST_STAMP_ROUNDS`] seeded
/// write-only scratch stamps — is injected through the post-copy drain hook
/// when the mode defers work, and applied to the survivor after the
/// pipeline otherwise: the targets are precomputed from the statics table
/// and the final value wins, so stores that land directly and stores that
/// trap on a parked page and get replayed by the fault handler converge to
/// the same bytes by design.
#[allow(clippy::too_many_arguments)]
fn postcopy_or_stw_update(
    program: &str,
    requests: u64,
    open: usize,
    writes: usize,
    mode: TransferMode,
    sched: SchedulerMode,
    shards: usize,
    fault: Option<FaultPlan>,
    seed: u64,
) -> (u64, Vec<mcr_core::Conflict>, UpdateReport) {
    let mut kernel = Kernel::new();
    install_standard_files(&mut kernel);
    let mut v1 = boot(&mut kernel, Box::new(program_by_name(program, 1)), &BootOptions::default()).unwrap();
    run_workload(&mut kernel, &mut v1, &workload_for(program, requests)).unwrap();
    let port = workload_for(program, 1).port;
    open_idle_connections(&mut kernel, &mut v1, port, open).unwrap();
    // Flip the scheduling core only now: every configuration enters the
    // pipeline with byte-identical kernel and instance state.
    v1.sched.mode = sched;
    let mut rng = Rng::new(seed ^ 0x9057_c09e);
    for _ in 0..3 {
        dirty_connection_nodes(&mut kernel, &v1, writes, rng.next() as u32);
    }
    let post_stamps: Vec<u32> = (0..POST_STAMP_ROUNDS).map(|_| rng.next() as u32).collect();
    let opts = UpdateOptions {
        scheduler: sched,
        mode,
        intra_pair_shards: shards,
        precopy: PrecopyOptions::disabled(),
        ..Default::default()
    };
    let mut pipeline = UpdatePipeline::for_options(&opts);
    let delivered = Rc::new(Cell::new(0usize));
    if mode != TransferMode::StopTheWorld {
        let stamps = post_stamps.clone();
        let delivered = Rc::clone(&delivered);
        pipeline = pipeline.with_postcopy_hook(Box::new(move |kernel, new_instance, _round| {
            let done = delivered.get();
            if done < stamps.len() {
                stamp_request_scratch(kernel, new_instance, 8, stamps[done]);
                delivered.set(done + 1);
            }
        }));
    }
    if let Some(fault) = fault {
        pipeline = pipeline.with_fault_plan(fault);
    }
    let (survivor, outcome) = pipeline.run(
        &mut kernel,
        v1,
        Box::new(program_by_name(program, 2)),
        InstrumentationConfig::full(),
        &opts,
    );
    if outcome.is_committed() {
        for stamp in post_stamps.into_iter().skip(delivered.get()) {
            stamp_request_scratch(&mut kernel, &survivor, 8, stamp);
        }
    }
    (kernel_fingerprint(&kernel), outcome.conflicts().to_vec(), outcome.report().clone())
}

/// Post-copy commit is byte-identical to stop-the-world: with the same
/// seeded pre-update writes and the same post-resume scratch stamps, the
/// forced post-copy and adaptive modes converge to the stop-the-world
/// kernel fingerprint, tracing statistics and per-process transfer reports
/// across both scheduler cores and intra-pair shard counts ∈ {1, 2}. The
/// forced post-copy run must actually defer work and retire every deferred
/// object before declaring the update done.
#[test]
fn postcopy_commits_are_byte_identical_to_stop_the_world() {
    let programs = ["vsftpd", "nginx", "httpd"];
    for seed in 0..3u64 {
        let mut rng = Rng::new(seed + 0xdefe7);
        let program = programs[seed as usize % programs.len()];
        let requests = rng.range(2, 5);
        let open = rng.range(1, 4) as usize;
        let writes = rng.range(1, 3) as usize;
        let mut fingerprints = Vec::new();
        for sched in [SchedulerMode::EventDriven, SchedulerMode::FullScan] {
            for shards in [1usize, 2] {
                let ctx =
                    |label: &str| format!("seed {seed} ({program}, {sched:?}, {shards} shards, {label})");
                let (stw_fp, stw_conflicts, stw) = postcopy_or_stw_update(
                    program,
                    requests,
                    open,
                    writes,
                    TransferMode::StopTheWorld,
                    sched,
                    shards,
                    None,
                    seed,
                );
                assert!(stw_conflicts.is_empty(), "{}: {stw_conflicts:?}", ctx("stop-the-world"));
                for mode in [TransferMode::Postcopy, TransferMode::Adaptive] {
                    let (fp, conflicts, report) = postcopy_or_stw_update(
                        program, requests, open, writes, mode, sched, shards, None, seed,
                    );
                    let ctx = ctx(&format!("{mode:?}"));
                    assert!(conflicts.is_empty(), "{ctx}: {conflicts:?}");
                    assert_eq!(fp, stw_fp, "{ctx}: post-commit kernel state diverged");
                    assert_eq!(report.tracing, stw.tracing, "{ctx}: tracing stats diverged");
                    assert_eq!(
                        report.transfer.per_process, stw.transfer.per_process,
                        "{ctx}: per-process transfer reports diverged"
                    );
                    if mode == TransferMode::Postcopy {
                        // The forced run really took the deferred path and
                        // fully drained it.
                        assert!(report.postcopy.deferred_pairs >= 1, "{ctx}: nothing deferred");
                        assert_eq!(
                            report.postcopy.trap_objects + report.postcopy.drained_objects,
                            report.postcopy.deferred_objects,
                            "{ctx}: deferred-object accounting does not add up"
                        );
                    }
                }
                fingerprints.push(stw_fp);
            }
        }
        assert!(
            fingerprints.windows(2).all(|w| w[0] == w[1]),
            "seed {seed} ({program}): cores / shard counts diverged: {fingerprints:x?}"
        );
    }
}

/// A fault injected mid-drain (or at the first post-resume fault-in) rolls
/// the update back to the old version byte-identically: the post-rollback
/// kernel fingerprint equals the no-update baseline that applied the same
/// pre-update writes and never entered the pipeline, and the conflict list
/// and per-process reports agree across scheduler cores and shard counts.
#[test]
fn mid_drain_faults_roll_back_byte_identically() {
    let (program, requests, open, writes, seed) = ("vsftpd", 3u64, 2usize, 2usize, 0x0d1eu64);

    // The no-update baseline: identical boot, traffic and seeded pre-update
    // writes, no pipeline. (The post-resume stamps never run on a rollback
    // path — the fault fires before the first one is delivered.)
    let baseline_fp = {
        let mut kernel = Kernel::new();
        install_standard_files(&mut kernel);
        let mut v1 =
            boot(&mut kernel, Box::new(program_by_name(program, 1)), &BootOptions::default()).unwrap();
        run_workload(&mut kernel, &mut v1, &workload_for(program, requests)).unwrap();
        let port = workload_for(program, 1).port;
        open_idle_connections(&mut kernel, &mut v1, port, open).unwrap();
        let mut rng = Rng::new(seed ^ 0x9057_c09e);
        for _ in 0..3 {
            dirty_connection_nodes(&mut kernel, &v1, writes, rng.next() as u32);
        }
        kernel_fingerprint(&kernel)
    };

    for (fault, kind) in
        [(FaultPlan::failing_at_drain_step(1), "drain-step"), (FaultPlan::failing_at_fault_in(1), "fault-in")]
    {
        let mut runs = Vec::new();
        for sched in [SchedulerMode::EventDriven, SchedulerMode::FullScan] {
            for shards in [1usize, 2] {
                let (fp, conflicts, report) = postcopy_or_stw_update(
                    program,
                    requests,
                    open,
                    writes,
                    TransferMode::Postcopy,
                    sched,
                    shards,
                    Some(fault.clone()),
                    seed,
                );
                let ctx = format!("{kind} ({sched:?}, {shards} shards)");
                assert!(
                    conflicts.iter().any(
                        |c| matches!(c, mcr_core::Conflict::FaultInjected { phase, .. } if phase == kind)
                    ),
                    "{ctx}: the armed fault did not fire: {conflicts:?}"
                );
                assert_eq!(fp, baseline_fp, "{ctx}: rollback did not restore the pre-update kernel state");
                runs.push((conflicts, report));
            }
        }
        let (base_conflicts, base_report) = &runs[0];
        for (conflicts, report) in &runs {
            assert_eq!(conflicts, base_conflicts, "{kind}: conflict lists diverged across configurations");
            assert_eq!(
                report.transfer.per_process, base_report.transfer.per_process,
                "{kind}: per-process reports diverged across configurations"
            );
        }
    }
}

/// Regression: a store that traps on a parked page mid-drain services
/// exactly the touched objects through the fault handler and never
/// double-applies — every deferred object is retired exactly once, either
/// by a trap or by a drain batch, and the final bytes equal the
/// stop-the-world run's (which applied the same stamps directly).
#[test]
fn drain_traps_service_each_deferred_object_exactly_once() {
    let (program, requests, open, writes, seed) = ("vsftpd", 4u64, 3usize, 2usize, 0x7a9u64);
    let (stw_fp, stw_conflicts, _) = postcopy_or_stw_update(
        program,
        requests,
        open,
        writes,
        TransferMode::StopTheWorld,
        SchedulerMode::EventDriven,
        1,
        None,
        seed,
    );
    assert!(stw_conflicts.is_empty(), "{stw_conflicts:?}");
    let (fp, conflicts, report) = postcopy_or_stw_update(
        program,
        requests,
        open,
        writes,
        TransferMode::Postcopy,
        SchedulerMode::EventDriven,
        1,
        None,
        seed,
    );
    assert!(conflicts.is_empty(), "{conflicts:?}");
    assert!(report.postcopy.traps >= 1, "the post-resume stamps never trapped");
    assert!(report.postcopy.trap_objects >= 1);
    assert_eq!(
        report.postcopy.trap_objects + report.postcopy.drained_objects,
        report.postcopy.deferred_objects,
        "every deferred object must be applied exactly once (trap xor drain)"
    );
    assert!(report.timings.trap_service.0 > 0, "trap service time must be charged");
    assert_eq!(fp, stw_fp, "trap replay double-applied or dropped a store");
}

/// Identity transformations round-trip arbitrary byte patterns.
#[test]
fn identity_field_map_roundtrips() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let n = rng.range(8, 256) as usize;
        let bytes: Vec<u8> = (0..n).map(|_| rng.next() as u8).collect();

        let size = (bytes.len() as u64 / 8) * 8;
        let map = mcr_core::transfer::FieldMap::identity(size, &[]);
        let out = apply_field_map(&map, &bytes[..size as usize]);
        assert_eq!(&out[..], &bytes[..size as usize]);
    }
}
