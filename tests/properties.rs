//! Property-based tests (proptest) over the core data structures and the
//! invariants the MCR design depends on.

use mcr_core::callstack::CallStackId;
use mcr_core::transfer::{apply_field_map, compute_field_map};
use mcr_procsim::{Addr, AddressSpace, AllocSite, FdTable, ObjId, PtMalloc, RegionKind, TypeTag, PAGE_SIZE};
use mcr_typemeta::{Field, TypeRegistry};
use proptest::prelude::*;

const HEAP_BASE: u64 = 0x0800_0000;
const HEAP_SIZE: u64 = 512 * PAGE_SIZE;

fn fresh_heap(instrumented: bool) -> (AddressSpace, PtMalloc) {
    let mut space = AddressSpace::new();
    space.map_region(Addr(HEAP_BASE), HEAP_SIZE, RegionKind::Heap, "heap").unwrap();
    (space, PtMalloc::new(Addr(HEAP_BASE), HEAP_SIZE, instrumented))
}

proptest! {
    /// The allocator never hands out overlapping or unaligned chunks, and
    /// frees make the memory reusable without corrupting live chunks.
    #[test]
    fn allocator_chunks_are_disjoint_and_aligned(
        sizes in proptest::collection::vec(1u64..2048, 1..60),
        free_mask in proptest::collection::vec(any::<bool>(), 1..60),
        instrumented in any::<bool>(),
    ) {
        let (mut space, mut heap) = fresh_heap(instrumented);
        heap.end_startup();
        let mut live: Vec<(Addr, u64)> = Vec::new();
        for (i, &size) in sizes.iter().enumerate() {
            let addr = heap.malloc(&mut space, size, AllocSite(i as u64), TypeTag(1)).unwrap();
            prop_assert!(addr.is_aligned(16));
            for &(other, osize) in &live {
                let disjoint = addr.0 + size <= other.0 || other.0 + osize <= addr.0;
                prop_assert!(disjoint, "chunk {addr} overlaps {other}");
            }
            live.push((addr, size));
            if free_mask.get(i).copied().unwrap_or(false) && live.len() > 1 {
                let (victim, _) = live.remove(0);
                heap.free(&mut space, victim).unwrap();
            }
        }
        // Every live chunk is still reported live by the allocator.
        for &(addr, _) in &live {
            prop_assert!(heap.is_live(addr));
        }
    }

    /// Soft-dirty tracking is a sound over-approximation: every written page
    /// is reported dirty after the write.
    #[test]
    fn soft_dirty_never_misses_a_write(
        offsets in proptest::collection::vec(0u64..(64 * PAGE_SIZE - 8), 1..40),
    ) {
        let mut space = AddressSpace::new();
        space.map_region(Addr(0x1000_0000), 64 * PAGE_SIZE, RegionKind::Heap, "h").unwrap();
        space.clear_soft_dirty();
        for &off in &offsets {
            space.write_u64(Addr(0x1000_0000 + off), off).unwrap();
        }
        for &off in &offsets {
            prop_assert!(space.is_dirty(Addr(0x1000_0000 + off)), "page of offset {off} not dirty");
        }
        prop_assert!(space.dirty_page_count() <= offsets.len() + offsets.len());
    }

    /// Descriptor allocation never reuses a number that is still open and the
    /// reserved range never collides with ordinary allocation.
    #[test]
    fn fd_table_numbers_are_unique(ops in proptest::collection::vec(0u8..3, 1..80)) {
        let mut table = FdTable::new();
        let mut open = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            match op {
                0 => open.push(table.alloc(ObjId(i as u64))),
                1 => open.push(table.alloc_reserved(ObjId(i as u64))),
                _ => {
                    if let Some(fd) = open.pop() {
                        table.remove(fd).unwrap();
                    }
                }
            }
            let mut seen = std::collections::BTreeSet::new();
            for &fd in &open {
                prop_assert!(seen.insert(fd), "duplicate descriptor {fd}");
                prop_assert!(table.contains(fd));
            }
        }
    }

    /// Call-stack IDs are deterministic and injective enough: permuting or
    /// renaming frames changes the identifier.
    #[test]
    fn callstack_ids_distinguish_different_stacks(
        frames in proptest::collection::vec("[a-z_]{1,12}", 1..8),
    ) {
        let id = CallStackId::from_frames(&frames);
        prop_assert_eq!(id, CallStackId::from_frames(&frames));
        let mut renamed = frames.clone();
        renamed[0] = format!("{}_v2", renamed[0]);
        prop_assert_ne!(id, CallStackId::from_frames(&renamed));
        if frames.len() > 1 && frames[0] != frames[frames.len() - 1] {
            let mut reversed = frames.clone();
            reversed.reverse();
            prop_assert_ne!(id, CallStackId::from_frames(&reversed));
        }
    }

    /// Structural type transformation preserves the values of every field
    /// that exists in both versions, regardless of added fields.
    #[test]
    fn field_map_preserves_common_fields(
        values in proptest::collection::vec(any::<u32>(), 4),
        add_front in any::<bool>(),
        add_back in any::<bool>(),
    ) {
        let names = ["a", "b", "c", "d"];
        let mut old_reg = TypeRegistry::new();
        let int_old = old_reg.int("int", 4);
        let old_ty = old_reg.struct_type(
            "s",
            names.iter().map(|n| Field::new(*n, int_old)).collect(),
        );
        let mut new_reg = TypeRegistry::new();
        let int_new = new_reg.int("int", 4);
        let mut new_fields = Vec::new();
        if add_front {
            new_fields.push(Field::new("front", int_new));
        }
        for n in names {
            new_fields.push(Field::new(n, int_new));
        }
        if add_back {
            new_fields.push(Field::new("back", int_new));
        }
        let new_ty = new_reg.struct_type("s", new_fields);

        let mut old_bytes = Vec::new();
        for v in &values {
            old_bytes.extend_from_slice(&v.to_le_bytes());
        }
        let map = compute_field_map(&old_reg, old_ty, &new_reg, new_ty);
        let new_bytes = apply_field_map(&map, &old_bytes);
        let new_layout = new_reg.struct_layout(new_ty);
        for (i, name) in names.iter().enumerate() {
            let field = new_layout.iter().find(|f| &f.name == name).unwrap();
            let off = field.offset as usize;
            let got = u32::from_le_bytes(new_bytes[off..off + 4].try_into().unwrap());
            prop_assert_eq!(got, values[i], "field {} lost its value", name);
        }
    }

    /// Identity transformations round-trip arbitrary byte patterns.
    #[test]
    fn identity_field_map_roundtrips(bytes in proptest::collection::vec(any::<u8>(), 8..256)) {
        let size = (bytes.len() as u64 / 8) * 8;
        let map = mcr_core::transfer::FieldMap::identity(size, &[]);
        let out = apply_field_map(&map, &bytes[..size as usize]);
        prop_assert_eq!(&out[..], &bytes[..size as usize]);
    }
}
