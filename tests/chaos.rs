//! Chaos-engine integration tests: a bounded seeded campaign over the
//! enumerated fault-site space, run at debug-build scale.
//!
//! The release-profile campaign (>= 200 schedules, `benches/chaos.rs`)
//! sweeps the full configuration grid; these tests assert the same safety
//! (byte-identical rollback) and liveness (supervisor convergence)
//! properties on a smaller schedule budget, plus the catalog/shrinker
//! plumbing end to end against a real server scenario.

use mcr_bench::{enumerate_sites, run_config, verify_rollback, ChaosConfig, ChaosMode, ChaosSpec, CONFIGS};
use mcr_core::runtime::{shrink_schedule, ChaosPlan, FaultPlan, SchedulerMode};
use mcr_core::PhaseName;

#[test]
fn bounded_campaign_rolls_back_byte_identical_and_supervisor_converges() {
    let spec = ChaosSpec::quick();
    // One configuration per axis value: event-driven stop-the-world and
    // full-scan pre-copy together cover both scheduler cores and two of the
    // three transfer modes (the post-copy cells run in the release grid).
    for (i, config) in [CONFIGS[0], CONFIGS[4]].into_iter().enumerate() {
        let outcome = run_config(&spec, config, i as u64);
        let label = config.label();
        assert!(outcome.schedules > 0 && outcome.fired == outcome.schedules, "{label}: all fire");
        assert_eq!(outcome.divergences, 0, "{label}: {:?}", outcome.repros);
        assert_eq!(outcome.rerun_mismatches, 0, "{label}: {:?}", outcome.repros);
        assert_eq!(outcome.supervisor_committed, outcome.supervisor_runs, "{label}: {:?}", outcome.repros);
        assert!(outcome.tier_commits[1] > 0, "{label}: no-precopy tier never committed");
        assert!(outcome.give_up_clean, "{label}: give-up drill failed");
        assert!(outcome.watchdog_clean, "{label}: watchdog drill failed");
        assert!(outcome.sites_injected > 0 && outcome.coverage_ratio() > 0.0, "{label}: coverage");
    }
}

#[test]
fn fault_site_enumeration_covers_all_three_dimensions() {
    let spec = ChaosSpec::quick();
    let stw = ChaosConfig { scheduler: SchedulerMode::EventDriven, mode: ChaosMode::StopTheWorld };
    let catalog = enumerate_sites(&spec, stw);
    let labels: Vec<&str> = catalog.boundaries.iter().map(|b| b.label()).collect();
    assert_eq!(
        labels,
        ["quiesce", "reinit-replay", "match-processes", "trace-and-transfer", "commit"],
        "stop-the-world run enumerates the standard boundaries"
    );
    assert!(catalog.transfer_objects > 0, "object writes enumerated");
    assert!(catalog.syscalls > 0, "pipeline syscalls enumerated");
    assert_eq!(catalog.precopy_copies, 0, "no precopy copies without precopy");
    assert_eq!(
        catalog.total_sites(),
        catalog.boundaries.len() as u64 + catalog.transfer_objects + catalog.syscalls
    );

    let pre = ChaosConfig { scheduler: SchedulerMode::EventDriven, mode: ChaosMode::Precopy };
    let precopy_catalog = enumerate_sites(&spec, pre);
    assert!(precopy_catalog.precopy_copies > 0, "precopy run enumerates round copies");
    assert!(
        precopy_catalog.precopy_copies <= precopy_catalog.transfer_objects,
        "precopy copies are a sub-range of the object-write space"
    );
}

#[test]
fn shrinker_reduces_a_noisy_schedule_against_the_real_pipeline() {
    let spec = ChaosSpec::quick();
    let config = ChaosConfig { scheduler: SchedulerMode::EventDriven, mode: ChaosMode::StopTheWorld };
    // The observed "failure": the run rolls back blaming the injected
    // syscall fault. The boundary and object arms are noise the shrinker
    // must discard, and the syscall index must come down to 1.
    let syscall_blamed = |plan: &ChaosPlan| {
        let r = verify_rollback(&spec, config, plan);
        r.fired && r.conflicts.iter().any(|c| c.contains("syscall#"))
    };
    let noisy = ChaosPlan::failing_at_syscall(7).and_at_transfer_object(50);
    assert!(syscall_blamed(&noisy), "the noisy schedule reproduces the failure");
    let minimal = shrink_schedule(&noisy, syscall_blamed);
    assert_eq!(minimal, ChaosPlan::failing_at_syscall(1), "1-minimal reproducer");
}

#[test]
fn deprecated_single_boundary_constructor_still_rolls_back() {
    #[allow(deprecated)]
    let plan = FaultPlan::failing_before(PhaseName::Commit);
    assert_eq!(plan, ChaosPlan::at_boundaries([PhaseName::Commit]));
    let spec = ChaosSpec::quick();
    let config = ChaosConfig { scheduler: SchedulerMode::EventDriven, mode: ChaosMode::StopTheWorld };
    let result = verify_rollback(&spec, config, &plan);
    assert!(result.fired && !result.diverged, "legacy plans keep the rollback guarantee");
}
