//! Smoke tests for the benchmark harnesses: every table/figure generator
//! runs end-to-end and produces plausibly-shaped output.

use mcr_bench::{figure3_series, memory_report, spec_alloc_report, table1_report, table2_report};
use mcr_typemeta::InstrumentationConfig;

#[test]
fn table1_contains_all_rows_and_totals() {
    let t = table1_report(5);
    for program in ["httpd", "nginx", "vsftpd", "sshd", "Total"] {
        assert!(t.contains(program), "missing {program} in:\n{t}");
    }
    assert!(t.contains("334"), "paper annotation total referenced");
}

#[test]
fn table2_likely_pointer_shape_follows_allocator_instrumentation() {
    let t = table2_report(10);
    assert!(t.contains("nginxreg"));
    // Parse the likely-pointer column per row.
    let likely = |label: &str| -> u64 {
        let row = t.lines().find(|l| l.starts_with(label)).unwrap();
        let cols: Vec<&str> = row.split('|').collect();
        cols[2].split_whitespace().next().unwrap().parse().unwrap()
    };
    let precise = |label: &str| -> u64 {
        let row = t.lines().find(|l| l.starts_with(label)).unwrap();
        let cols: Vec<&str> = row.split('|').collect();
        cols[1].split_whitespace().next().unwrap().parse().unwrap()
    };
    // Uninstrumented custom allocators (httpd pools) make likely pointers a
    // far larger share of all pointers than in a fully instrumented
    // malloc-based program (vsftpd), and instrumenting nginx's region
    // allocator (nginxreg) reduces its likely-pointer population.
    let share = |label: &str| likely(label) as f64 / (likely(label) + precise(label)).max(1) as f64;
    assert!(share("httpd") > share("vsftpd"), "httpd {} vs vsftpd {}\n{t}", share("httpd"), share("vsftpd"));
    assert!(likely("nginxreg") <= likely("nginx"), "{t}");
}

#[test]
fn figure3_state_transfer_grows_with_connections() {
    let series = figure3_series("sshd", &[0, 20], 3);
    assert!(series[1].state_transfer_ms > series[0].state_transfer_ms);
    assert!(series[1].dirty_reduction > 0.0, "dirty tracking skips clean startup state");
}

#[test]
fn memory_overhead_is_positive_for_every_program() {
    let report = memory_report(10);
    for line in report.lines().filter(|l| l.contains('x') && l.contains('|')) {
        // overhead column like "    2.43x"
        if let Some(col) = line.split('|').nth(1) {
            if let Some(ratio) = col.split_whitespace().last() {
                if let Some(stripped) = ratio.strip_suffix('x') {
                    let value: f64 = stripped.parse().unwrap();
                    assert!(value >= 1.0, "instrumentation never shrinks memory: {line}");
                }
            }
        }
    }
}

#[test]
fn spec_alloc_report_flags_perlbench_as_worst_case() {
    let report = spec_alloc_report(3, 1);
    assert!(report.contains("perlbench-like"));
}

#[test]
fn update_with_connections_commits_for_every_program() {
    for program in mcr_bench::PROGRAMS {
        let outcome = mcr_bench::update_with_connections(program, 1, 3, 5, InstrumentationConfig::full());
        assert!(outcome.is_committed(), "{program}: {:?}", outcome.conflicts());
    }
}
