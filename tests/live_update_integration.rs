//! End-to-end integration tests spanning the whole workspace: simulated
//! kernel, type metadata, MCR runtime, server models and workloads.

use mcr_bench::{kernel_fingerprint, precopy_update};
use mcr_core::runtime::{
    boot, live_update, run_rounds, BootOptions, FaultPlan, PhaseName, PrecopyOptions, SchedulerMode,
    UpdateOptions, UpdatePipeline,
};
use mcr_core::{Conflict, QuiescenceProfiler};
use mcr_procsim::Kernel;
use mcr_servers::{install_standard_files, precopy_scenarios, program_by_name, programs, ServerSpec};
use mcr_typemeta::InstrumentationConfig;
use mcr_workload::{open_idle_connections, precopy_serving_hook, run_workload, workload_for};

fn booted(program: &str) -> (Kernel, mcr_core::McrInstance) {
    let mut kernel = Kernel::new();
    install_standard_files(&mut kernel);
    let instance = boot(&mut kernel, Box::new(program_by_name(program, 1)), &BootOptions::default()).unwrap();
    (kernel, instance)
}

#[test]
fn every_program_boots_serves_and_updates() {
    for spec in ServerSpec::all() {
        let (mut kernel, mut v1) = booted(&spec.name);
        let workload = workload_for(&spec.name, 10);
        let result = run_workload(&mut kernel, &mut v1, &workload).unwrap();
        assert_eq!(result.completed, 10, "{} answered every request", spec.name);

        let (v2, outcome) = live_update(
            &mut kernel,
            v1,
            Box::new(program_by_name(&spec.name, 2)),
            InstrumentationConfig::full(),
            &UpdateOptions::default(),
        );
        assert!(outcome.is_committed(), "{}: {:?}", spec.name, outcome.conflicts());
        assert_eq!(v2.state.version, spec.version_string(2));
        let report = outcome.report();
        assert!(report.timings.total.0 > 0);
        assert!(report.transfer.objects_transferred() > 0);
    }
}

#[test]
fn update_preserves_open_connections_and_identity_of_listener() {
    let (mut kernel, mut v1) = booted("nginx");
    run_workload(&mut kernel, &mut v1, &workload_for("nginx", 5)).unwrap();
    let idle = open_idle_connections(&mut kernel, &mut v1, 8080, 20).unwrap();
    assert_eq!(kernel.open_connection_count(), idle.len() + workload_for("nginx", 1).idle_connections);

    let before = kernel.open_connection_count();
    let (mut v2, outcome) = live_update(
        &mut kernel,
        v1,
        Box::new(programs::nginx(2)),
        InstrumentationConfig::full(),
        &UpdateOptions::default(),
    );
    assert!(outcome.is_committed(), "{:?}", outcome.conflicts());
    // No connection was dropped by the update itself.
    assert_eq!(kernel.open_connection_count(), before);
    // The listener still accepts new clients without rebinding the port.
    let c = kernel.client_connect(8080).unwrap();
    kernel.client_send(c, b"GET /".to_vec()).unwrap();
    run_rounds(&mut kernel, &mut v2, 3).unwrap();
    assert!(kernel.client_recv(c).is_some());
}

#[test]
fn quiescence_profile_matches_process_models() {
    // Event-driven nginx: no volatile quiescent points (its rigorous event
    // model is the paper's example of an update-friendly design).
    let (mut kernel, mut nginx) = booted("nginx");
    run_workload(&mut kernel, &mut nginx, &workload_for("nginx", 10)).unwrap();
    let report = QuiescenceProfiler::analyze(&kernel, &nginx.state);
    assert_eq!(report.volatile_points(), 0, "nginx has only persistent quiescent points");
    assert!(report.short_lived_classes() >= 1, "daemonization helper");

    // Process-per-connection vsftpd: session processes yield volatile points.
    let (mut kernel, mut vsftpd) = booted("vsftpd");
    run_workload(&mut kernel, &mut vsftpd, &workload_for("vsftpd", 5)).unwrap();
    let report = QuiescenceProfiler::analyze(&kernel, &vsftpd.state);
    assert!(report.volatile_points() >= 1, "per-connection sessions are volatile quiescent points");
}

#[test]
fn chained_updates_across_three_generations_keep_state() {
    let (mut kernel, mut instance) = booted("nginx");
    let mut served = 0u64;
    for generation in 2..=4u32 {
        // Serve a couple of requests under the current generation.
        run_workload(&mut kernel, &mut instance, &workload_for("nginx", 2)).unwrap();
        // Each workload run opens `idle_connections` long-lived connections
        // plus the measured requests; the server records all of them.
        served += 2 + workload_for("nginx", 1).idle_connections as u64;
        let opts =
            UpdateOptions { layout_slide: 0x1_0000_0000 * u64::from(generation), ..Default::default() };
        let (next, outcome) = live_update(
            &mut kernel,
            instance,
            Box::new(programs::nginx(generation)),
            InstrumentationConfig::full(),
            &opts,
        );
        assert!(outcome.is_committed(), "generation {generation}: {:?}", outcome.conflicts());
        instance = next;
    }
    // The `stats` global accumulated requests across all generations; the
    // requests were handled by worker processes, each with its own copy of
    // the global, and every copy was transferred at every update.
    let stats = instance.state.statics.lookup("stats").unwrap().addr;
    let requests: u64 = instance
        .state
        .processes
        .iter()
        .map(|&pid| kernel.process(pid).unwrap().space().read_u64(stats).unwrap())
        .sum();
    assert_eq!(requests, served, "request counter survived every update");
}

/// The tentpole acceptance check for the pair-parallel restore phase: with
/// at least four matched pairs, the measured parallel `state_transfer`
/// (makespan of the scoped-thread schedule) beats the sequential ablation,
/// and the default worker count (one per pair) is bounded by the slowest
/// pair.
#[test]
fn parallel_state_transfer_beats_serial_with_four_or_more_pairs() {
    let (mut kernel, mut v1) = booted("vsftpd");
    run_workload(&mut kernel, &mut v1, &workload_for("vsftpd", 6)).unwrap();
    open_idle_connections(&mut kernel, &mut v1, 21, 4).unwrap();
    let (_v2, outcome) = live_update(
        &mut kernel,
        v1,
        Box::new(programs::vsftpd(2)),
        InstrumentationConfig::full(),
        &UpdateOptions::default(),
    );
    assert!(outcome.is_committed(), "{:?}", outcome.conflicts());
    let report = outcome.report();
    let pairs = report.processes_matched + report.processes_recreated;
    assert!(pairs >= 4, "per-connection sessions give at least four pairs (got {pairs})");
    assert_eq!(report.transfer.workers, pairs, "default is one worker per pair");
    assert_eq!(
        report.timings.state_transfer, report.transfer.parallel_duration,
        "one worker per pair: the slowest pair bounds the phase"
    );
    assert!(
        report.timings.state_transfer < report.timings.state_transfer_serial,
        "parallel {} ns must beat serial {} ns",
        report.timings.state_transfer.0,
        report.timings.state_transfer_serial.0
    );
}

/// The pre-copy acceptance criterion: on the read-mostly multiprocess
/// scenario (>= 4 matched pairs), the measured stop-the-world `downtime`
/// with pre-copy enabled is at most 50% of the `precopy_rounds = 0`
/// baseline, while the final kernel fingerprint, transfer reports and
/// conflicts are byte-identical across both configurations.
#[test]
fn precopy_halves_downtime_on_the_read_mostly_scenario() {
    let scenario = precopy_scenarios()[0];
    assert_eq!(scenario.name, "read-mostly");
    let (base_fp, base_outcome) = precopy_update(&scenario, 1, 0, 3, SchedulerMode::EventDriven);
    let (pre_fp, pre_outcome) = precopy_update(&scenario, 1, 3, 3, SchedulerMode::EventDriven);
    assert!(base_outcome.is_committed(), "{:?}", base_outcome.conflicts());
    assert!(pre_outcome.is_committed(), "{:?}", pre_outcome.conflicts());
    let base = base_outcome.report();
    let pre = pre_outcome.report();

    let pairs = base.processes_matched + base.processes_recreated;
    assert!(pairs >= 4, "scenario must yield >= 4 matched pairs, got {pairs}");
    assert_eq!(base_fp, pre_fp, "pre-copy diverged from the stop-the-world baseline");
    assert_eq!(base.transfer.per_process, pre.transfer.per_process, "transfer reports diverged");
    assert!(base_outcome.conflicts().is_empty() && pre_outcome.conflicts().is_empty());

    // The headline number.
    assert!(
        pre.timings.downtime.0 * 2 <= base.timings.downtime.0,
        "downtime {} ns is not <= 50% of the baseline {} ns",
        pre.timings.downtime.0,
        base.timings.downtime.0
    );
    // The split is accounted coherently: concurrent time is reported
    // separately, and the phase trace shows the six-phase pre-copy order.
    assert!(pre.timings.precopy.0 > 0);
    assert!(pre.timings.downtime.0 <= pre.timings.total.0);
    let executed: Vec<PhaseName> = pre.phases.records().iter().map(|r| r.name).collect();
    assert_eq!(executed, PhaseName::PRECOPY_ALL, "pre-copy pipeline runs the six-phase order");
    assert_eq!(
        base.phases.records().iter().map(|r| r.name).collect::<Vec<_>>(),
        PhaseName::ALL,
        "the baseline keeps the standard five-phase order"
    );
    // The window only paid for the residual working set.
    assert!(pre.precopy.precopied_objects() > 0);
    assert!(pre.precopy.residual.objects < base.precopy.residual.objects);
    assert!(pre.timings.state_transfer < base.timings.state_transfer);
}

/// The old instance keeps *serving* during the pre-copy rounds: a workload
/// hook issues fresh requests after every concurrent round and the old
/// version answers them before the world ever stops.
#[test]
fn old_version_serves_traffic_during_precopy_rounds() {
    let mut kernel = Kernel::new();
    install_standard_files(&mut kernel);
    let mut v1 = boot(&mut kernel, Box::new(programs::nginx(1)), &BootOptions::default()).unwrap();
    run_workload(&mut kernel, &mut v1, &workload_for("nginx", 3)).unwrap();
    let served_before = v1.state.counters.events_handled;

    let opts = UpdateOptions {
        precopy: PrecopyOptions { rounds: 3, convergence_bytes: 0, serve_rounds: 1 },
        ..Default::default()
    };
    let pipeline = UpdatePipeline::for_options(&opts)
        .with_precopy_hook(precopy_serving_hook(&workload_for("nginx", 1), 2));
    let (v2, outcome) =
        pipeline.run(&mut kernel, v1, Box::new(programs::nginx(2)), InstrumentationConfig::full(), &opts);
    assert!(outcome.is_committed(), "{:?}", outcome.conflicts());
    let report = outcome.report();
    assert!(report.precopy.enabled);

    // The connections accepted mid-update survived into the new version:
    // nginx's per-process `stats` counters carry over, so the grand total
    // includes the requests served during the pre-copy rounds.
    let stats = v2.state.statics.lookup("stats").unwrap().addr;
    let requests: u64 = v2
        .state
        .processes
        .iter()
        .map(|&pid| kernel.process(pid).unwrap().space().read_u64(stats).unwrap())
        .sum();
    assert!(
        requests >= served_before + 3 * 2,
        "requests served during pre-copy rounds were transferred ({requests})"
    );
}

/// A mid-phase fault at the n-th transferred object fired *during a
/// pre-copy round* rolls back cleanly — and because the world has not
/// stopped yet, the old instance is still live and keeps serving without
/// even having been quiesced.
#[test]
fn fault_at_nth_object_during_precopy_round_rolls_back_with_old_instance_live() {
    let mut kernel = Kernel::new();
    install_standard_files(&mut kernel);
    let mut v1 = boot(&mut kernel, Box::new(programs::nginx(1)), &BootOptions::default()).unwrap();
    run_workload(&mut kernel, &mut v1, &workload_for("nginx", 5)).unwrap();
    let old_pids = v1.state.processes.clone();
    let fingerprint_before = kernel_fingerprint(&kernel);

    let opts = UpdateOptions {
        transfer_workers: 1, // deterministic object ordering for the trigger
        precopy: PrecopyOptions { rounds: 2, convergence_bytes: 0, serve_rounds: 1 },
        ..Default::default()
    };
    let pipeline =
        UpdatePipeline::for_options(&opts).with_fault_plan(FaultPlan::failing_at_transfer_object(3));
    let (mut survivor, outcome) =
        pipeline.run(&mut kernel, v1, Box::new(programs::nginx(2)), InstrumentationConfig::full(), &opts);

    assert!(!outcome.is_committed(), "the mid-round fault must abort the update");
    assert!(
        outcome
            .conflicts()
            .iter()
            .any(|c| matches!(c, Conflict::FaultInjected { phase } if phase == "transfer-object")),
        "conflicts: {:?}",
        outcome.conflicts()
    );
    // The failing phase is the concurrent pre-copy round — the quiescence
    // barrier never even ran.
    let last = outcome.report().phases.last().unwrap();
    assert_eq!(last.name, PhaseName::Precopy);
    assert!(!last.completed);
    assert!(outcome.report().phases.duration_of(PhaseName::Quiesce).is_none(), "world never stopped");
    assert_eq!(outcome.report().timings.downtime.0, 0, "no downtime was incurred");

    // Rollback left the old version intact: same processes, no leaked
    // new-version processes, byte-identical old-version memory.
    assert_eq!(survivor.state.processes, old_pids);
    assert_eq!(kernel.pids().len(), old_pids.len(), "new-version processes were torn down");
    assert_eq!(kernel_fingerprint(&kernel), fingerprint_before, "old version untouched by the abort");

    // ... and it keeps serving.
    let result = run_workload(&mut kernel, &mut survivor, &workload_for("nginx", 4)).unwrap();
    assert_eq!(result.completed, 4);
}

/// The same mid-phase trigger fired inside the stop-the-world window (no
/// pre-copy) also rolls back cleanly.
#[test]
fn fault_at_nth_object_in_stop_the_world_window_rolls_back() {
    let (mut kernel, mut v1) = booted("nginx");
    run_workload(&mut kernel, &mut v1, &workload_for("nginx", 4)).unwrap();
    let opts = UpdateOptions { transfer_workers: 1, ..Default::default() };
    let pipeline = UpdatePipeline::standard().with_fault_plan(FaultPlan::failing_at_transfer_object(1));
    let (mut survivor, outcome) =
        pipeline.run(&mut kernel, v1, Box::new(programs::nginx(2)), InstrumentationConfig::full(), &opts);
    assert!(!outcome.is_committed());
    assert!(outcome.conflicts().iter().any(|c| matches!(c, Conflict::FaultInjected { .. })));
    let last = outcome.report().phases.last().unwrap();
    assert_eq!(last.name, PhaseName::TraceAndTransfer);
    assert!(!last.completed);
    let result = run_workload(&mut kernel, &mut survivor, &workload_for("nginx", 3)).unwrap();
    assert_eq!(result.completed, 3);
}

#[test]
fn rollback_keeps_old_version_fully_functional() {
    let (mut kernel, mut v1) = booted("vsftpd");
    run_workload(&mut kernel, &mut v1, &workload_for("vsftpd", 8)).unwrap();
    // Jumping two generations changes conn_s under non-updatable references.
    let (mut survivor, outcome) = live_update(
        &mut kernel,
        v1,
        Box::new(programs::vsftpd(3)),
        InstrumentationConfig::full(),
        &UpdateOptions::default(),
    );
    assert!(!outcome.is_committed());
    assert!(outcome.conflicts().iter().any(|c| matches!(c, Conflict::NonUpdatableObjectChanged { .. })));
    assert_eq!(survivor.state.version, "1.1.0");
    // It still serves new sessions after rolling back.
    let result = run_workload(&mut kernel, &mut survivor, &workload_for("vsftpd", 4)).unwrap();
    assert_eq!(result.completed, 4);
}

#[test]
fn annotation_free_deployment_rolls_back_for_per_connection_servers() {
    // Without the control-migration extension for volatile quiescent points,
    // per-connection session processes have no counterpart and the update
    // must abort (and roll back cleanly).
    let (mut kernel, mut v1) = booted("sshd");
    run_workload(&mut kernel, &mut v1, &workload_for("sshd", 3)).unwrap();
    let opts = UpdateOptions { recreate_unmatched_processes: false, ..Default::default() };
    let (survivor, outcome) =
        live_update(&mut kernel, v1, Box::new(programs::sshd(2)), InstrumentationConfig::full(), &opts);
    assert!(!outcome.is_committed());
    assert!(outcome.conflicts().iter().any(|c| matches!(c, Conflict::MissingCounterpart { .. })));
    assert_eq!(survivor.state.version, "3.5p1");
}

/// Forces a fault at *every* pipeline phase boundary in turn and proves the
/// paper's atomicity claim phase by phase: wherever the update dies, the old
/// instance rolls back cleanly and resumes serving traffic.
#[test]
fn injected_fault_at_every_phase_boundary_rolls_back_cleanly() {
    for boundary in PhaseName::ALL {
        let (mut kernel, mut v1) = booted("nginx");
        run_workload(&mut kernel, &mut v1, &workload_for("nginx", 5)).unwrap();
        let old_pids = v1.state.processes.clone();
        let connections_before = kernel.open_connection_count();

        let pipeline = UpdatePipeline::standard().with_fault_plan(FaultPlan::at_boundaries([boundary]));
        let (mut survivor, outcome) = pipeline.run(
            &mut kernel,
            v1,
            Box::new(programs::nginx(2)),
            InstrumentationConfig::full(),
            &UpdateOptions::default(),
        );

        // The attempt aborted with the injected fault as its conflict.
        assert!(!outcome.is_committed(), "fault before {boundary} must abort the update");
        assert!(
            outcome
                .conflicts()
                .iter()
                .any(|c| matches!(c, Conflict::FaultInjected { phase } if phase == boundary.label())),
            "fault before {boundary}: conflicts {:?}",
            outcome.conflicts()
        );

        // Phases before the boundary completed; the boundary phase and
        // everything after it never ran.
        let report = outcome.report();
        let mut reached = false;
        for phase in PhaseName::ALL {
            if phase == boundary {
                reached = true;
            }
            if reached {
                assert!(
                    report.phases.duration_of(phase).is_none(),
                    "fault before {boundary}: {phase} must not run"
                );
            } else {
                assert!(
                    report.phases.completed(phase),
                    "fault before {boundary}: {phase} should have completed"
                );
            }
        }

        // The old version survived intact: same version, same processes, no
        // leaked new-version processes, no dropped connections.
        assert_eq!(survivor.state.version, ServerSpec::nginx().version_string(1));
        assert_eq!(survivor.state.processes, old_pids, "old process set unchanged");
        assert_eq!(
            kernel.pids().len(),
            old_pids.len(),
            "fault before {boundary}: new-version processes were torn down"
        );
        assert_eq!(kernel.open_connection_count(), connections_before);

        // ... and it keeps serving traffic after the rollback.
        let result = run_workload(&mut kernel, &mut survivor, &workload_for("nginx", 4)).unwrap();
        assert_eq!(result.completed, 4, "fault before {boundary}: old version serves after rollback");
    }
}

/// A faulted attempt still reports how far it got: the per-phase trace of a
/// rollback is a prefix of the standard phase order.
#[test]
fn rolled_back_report_traces_executed_prefix() {
    let (mut kernel, v1) = booted("vsftpd");
    let pipeline =
        UpdatePipeline::standard().with_fault_plan(FaultPlan::at_boundaries([PhaseName::TraceAndTransfer]));
    let (_survivor, outcome) = pipeline.run(
        &mut kernel,
        v1,
        Box::new(programs::vsftpd(2)),
        InstrumentationConfig::full(),
        &UpdateOptions::default(),
    );
    let executed: Vec<PhaseName> = outcome.report().phases.records().iter().map(|r| r.name).collect();
    assert_eq!(executed, vec![PhaseName::Quiesce, PhaseName::ReinitReplay, PhaseName::MatchProcesses]);
    assert!(outcome.report().timings.quiescence.0 > 0);
    assert!(outcome.report().timings.control_migration.0 > 0);
}

#[test]
fn baseline_build_cannot_quiesce_but_serves_normally() {
    let mut kernel = Kernel::new();
    install_standard_files(&mut kernel);
    let opts = BootOptions { config: InstrumentationConfig::baseline(), ..Default::default() };
    let mut instance = boot(&mut kernel, Box::new(programs::nginx(1)), &opts).unwrap();
    let result = run_workload(&mut kernel, &mut instance, &workload_for("nginx", 5)).unwrap();
    assert_eq!(result.completed, 5);
    assert_eq!(instance.state.counters.quiescence_checks, 0);
}
