//! Umbrella crate for the MCR reproduction workspace.
//!
//! This crate only re-exports the member crates so that the workspace-level
//! examples and integration tests have a single dependency surface.

pub use mcr_core as core;
pub use mcr_procsim as procsim;
pub use mcr_servers as servers;
pub use mcr_typemeta as typemeta;
pub use mcr_workload as workload;
