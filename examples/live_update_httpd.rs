//! Live update of the multiprocess, multithreaded Apache httpd model with
//! open client connections, printing the full update report.
//!
//! Run with: `cargo run --example live_update_httpd`

use mcr_core::runtime::{boot, live_update, BootOptions, UpdateOptions};
use mcr_procsim::Kernel;
use mcr_servers::{install_standard_files, programs};
use mcr_typemeta::InstrumentationConfig;
use mcr_workload::{open_idle_connections, run_workload, WorkloadSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut kernel = Kernel::new();
    install_standard_files(&mut kernel);
    let mut v1 = boot(&mut kernel, Box::new(programs::httpd(1)), &BootOptions::default())?;
    println!(
        "httpd {}: {} processes, {} threads",
        v1.state.version,
        v1.state.processes.len(),
        v1.state.threads.len()
    );

    // Drive an Apache-bench style workload, then leave 50 connections open.
    let result = run_workload(&mut kernel, &mut v1, &WorkloadSpec::apache_bench(80, 200))?;
    println!("workload: {} requests completed, {:.1} req/s", result.completed, result.requests_per_second());
    open_idle_connections(&mut kernel, &mut v1, 80, 50)?;

    let (v2, outcome) = live_update(
        &mut kernel,
        v1,
        Box::new(programs::httpd(2)),
        InstrumentationConfig::full(),
        &UpdateOptions::default(),
    );
    let report = outcome.report();
    println!("committed: {}", outcome.is_committed());
    println!("  open connections at update time : {}", report.open_connections);
    println!(
        "  processes matched / recreated   : {} / {}",
        report.processes_matched, report.processes_recreated
    );
    println!("  quiescence                      : {:.3} ms", report.timings.quiescence.as_millis_f64());
    println!(
        "  control migration               : {:.3} ms",
        report.timings.control_migration.as_millis_f64()
    );
    println!("  state transfer (parallel)       : {:.3} ms", report.timings.state_transfer.as_millis_f64());
    println!(
        "  state transfer (serial)         : {:.3} ms",
        report.timings.state_transfer_serial.as_millis_f64()
    );
    println!("  objects transferred             : {}", report.transfer.objects_transferred());
    println!("  bytes transferred               : {}", report.transfer.bytes_transferred());
    println!("  precise pointers                : {}", report.tracing.precise.total);
    println!("  likely pointers                 : {}", report.tracing.likely.total);
    println!("  dirty-tracking reduction        : {:.1}%", report.dirty_reduction() * 100.0);
    println!("new version: httpd {}", v2.state.version);
    Ok(())
}
