//! Demonstrates MCR's atomic, reversible updates: a new version whose type
//! change touches a conservatively-traced (non-updatable) object causes a
//! conflict, the update rolls back, and the old version keeps serving.
//!
//! Run with: `cargo run --example rollback_on_conflict`

use mcr_core::runtime::{boot, live_update, run_rounds, BootOptions, UpdateOptions};
use mcr_core::Conflict;
use mcr_procsim::Kernel;
use mcr_servers::{install_standard_files, programs, GenericServer, ServerSpec};
use mcr_typemeta::InstrumentationConfig;

/// vsftpd generation 3 changes the layout of `conn_s` (adds `started_at`);
/// the connection records referenced from the untyped `request_buf` buffer
/// are non-updatable, so jumping straight from generation 1 to 3 conflicts.
fn incompatible_new_version() -> GenericServer {
    GenericServer::new(ServerSpec::vsftpd(), 3)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut kernel = Kernel::new();
    install_standard_files(&mut kernel);
    let mut v1 = boot(&mut kernel, Box::new(programs::vsftpd(1)), &BootOptions::default())?;

    // Serve a few sessions so connection records exist (and one of them is
    // referenced from the untyped scratch buffer).
    for _ in 0..6 {
        let c = kernel.client_connect(21)?;
        kernel.client_send(c, b"USER anonymous".to_vec())?;
        run_rounds(&mut kernel, &mut v1, 2)?;
    }

    let (mut survivor, outcome) = live_update(
        &mut kernel,
        v1,
        Box::new(incompatible_new_version()),
        InstrumentationConfig::full(),
        &UpdateOptions::default(),
    );
    println!("committed: {}", outcome.is_committed());
    for conflict in outcome.conflicts() {
        println!("conflict: {conflict}");
    }
    assert!(!outcome.is_committed(), "the incompatible update must roll back");
    assert!(outcome.conflicts().iter().any(|c| matches!(c, Conflict::NonUpdatableObjectChanged { .. })));

    // The old version resumed from its checkpoint and still answers.
    let c = kernel.client_connect(21)?;
    kernel.client_send(c, b"USER anonymous".to_vec())?;
    run_rounds(&mut kernel, &mut survivor, 2)?;
    println!("old version still serving: {}", String::from_utf8_lossy(&kernel.client_recv(c).unwrap()));
    println!("running version after rollback: vsftpd {}", survivor.state.version);
    Ok(())
}
