//! Applies a long chain of consecutive live updates to the event-driven
//! nginx model (the paper evaluates 25 nginx releases), checking after each
//! update that pending client connections are still served and no request is
//! ever refused.
//!
//! Run with: `cargo run --example nginx_zero_downtime`

use mcr_core::runtime::{boot, live_update, run_rounds, BootOptions, UpdateOptions};
use mcr_procsim::Kernel;
use mcr_servers::{install_standard_files, programs};
use mcr_typemeta::InstrumentationConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut kernel = Kernel::new();
    install_standard_files(&mut kernel);
    let mut instance = boot(&mut kernel, Box::new(programs::nginx(1)), &BootOptions::default())?;
    let updates = 10u32;
    let mut total_transfer_ms = 0.0;

    for generation in 2..=(1 + updates) {
        // A client connects *before* the update; it must be served after.
        let pending = kernel.client_connect(8080)?;
        kernel.client_send(pending, b"GET / HTTP/1.0".to_vec())?;

        let opts =
            UpdateOptions { layout_slide: 0x1_0000_0000 * u64::from(generation), ..Default::default() };
        let (next, outcome) = live_update(
            &mut kernel,
            instance,
            Box::new(programs::nginx(generation)),
            InstrumentationConfig::full_with_region_instrumentation(),
            &opts,
        );
        assert!(
            outcome.is_committed(),
            "update to generation {generation} failed: {:?}",
            outcome.conflicts()
        );
        total_transfer_ms += outcome.report().timings.state_transfer.as_millis_f64();
        instance = next;

        run_rounds(&mut kernel, &mut instance, 3)?;
        let reply = kernel.client_recv(pending).expect("pending request served after the update");
        assert!(String::from_utf8_lossy(&reply).contains(&format!("gen{generation}")));
        println!("update {} -> {}: ok ({})", generation - 1, generation, String::from_utf8_lossy(&reply));
    }
    println!(
        "{updates} consecutive live updates committed; average state-transfer time {:.3} ms",
        total_transfer_ms / f64::from(updates)
    );
    Ok(())
}
