//! Quickstart: boot a simulated MCR-enabled server, serve a request, and
//! live-update it to a new version without dropping the listening socket.
//!
//! Run with: `cargo run --example quickstart`

use mcr_core::runtime::{boot, live_update, run_rounds, BootOptions, UpdateOptions};
use mcr_procsim::Kernel;
use mcr_servers::{install_standard_files, programs};
use mcr_typemeta::InstrumentationConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Boot the simulated kernel and the old version of the server.
    let mut kernel = Kernel::new();
    install_standard_files(&mut kernel);
    let mut v1 = boot(&mut kernel, Box::new(programs::nginx(1)), &BootOptions::default())?;
    println!("booted nginx {} with {} processes", v1.state.version, v1.state.processes.len());

    // 2. Serve a request with the old version.
    let conn = kernel.client_connect(8080)?;
    kernel.client_send(conn, b"GET /index.html HTTP/1.0".to_vec())?;
    run_rounds(&mut kernel, &mut v1, 2)?;
    println!("v1 answered: {}", String::from_utf8_lossy(&kernel.client_recv(conn).unwrap()));

    // 3. Live update to the next release: checkpoint, restart, restore.
    let (mut v2, outcome) = live_update(
        &mut kernel,
        v1,
        Box::new(programs::nginx(2)),
        InstrumentationConfig::full(),
        &UpdateOptions::default(),
    );
    let report = outcome.report();
    println!(
        "update committed={} quiescence={:.3}ms control-migration={:.3}ms state-transfer={:.3}ms",
        outcome.is_committed(),
        report.timings.quiescence.as_millis_f64(),
        report.timings.control_migration.as_millis_f64(),
        report.timings.state_transfer.as_millis_f64(),
    );

    // 4. The same listening socket keeps serving, now with the new version.
    let conn = kernel.client_connect(8080)?;
    kernel.client_send(conn, b"GET /index.html HTTP/1.0".to_vec())?;
    run_rounds(&mut kernel, &mut v2, 2)?;
    println!("v2 answered: {}", String::from_utf8_lossy(&kernel.client_recv(conn).unwrap()));
    Ok(())
}
